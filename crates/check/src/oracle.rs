//! Trace oracles: the paper's service properties checked over the typed
//! [`ProtocolEvent`] log of a finished run.
//!
//! Where [`todr_harness::checkers`] compares *final states* of live
//! replicas, these oracles replay the *whole history* and catch
//! violations that final-state comparison can miss (a green line that
//! regressed mid-run and recovered, two nodes that disagreed on a green
//! position that was later garbage-collected, a recovery that restored
//! more state than was ever persisted). Each oracle maps to a property
//! of the paper — see the per-variant documentation on
//! [`TraceViolation`] and DESIGN.md's "Checking" section.
//!
//! [`check_trace`] is a pure function of the event slice, so it can run
//! against a live world, a replayed counterexample, or a deserialized
//! event tail with identical results.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use todr_db::conflict::{digests_conflict, ClassDigest};
use todr_sim::{EventColor, ProtocolEvent, ReadTier, RecordedEvent};

/// A violated trace property.
///
/// `node`, `creator`, `sender` values are raw replica indices as carried
/// by [`ProtocolEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceViolation {
    /// Theorem 1 over the history: two replicas greened *different*
    /// actions at the same global green position.
    GreenOrderConflict {
        /// The disputed green position (0-based).
        position: u64,
        /// First replica and the `(creator, action_seq)` it greened.
        a: (u32, (u32, u64)),
        /// Second replica and the `(creator, action_seq)` it greened.
        b: (u32, (u32, u64)),
    },
    /// An action's color moved backwards (e.g. green, then re-announced
    /// yellow) within one engine incarnation — §3's knowledge levels
    /// only ever increase.
    ColorRegression {
        /// Reporting replica.
        node: u32,
        /// Creator of the action.
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
        /// The color the action had already reached.
        had: EventColor,
        /// The lower color announced later.
        got: EventColor,
    },
    /// A green line moved backwards (or stalled on a re-announcement)
    /// within one engine incarnation — the global persistent order is a
    /// strictly growing prefix.
    GreenLineRegression {
        /// Reporting replica.
        node: u32,
        /// The green line it had reached.
        from: u64,
        /// The non-increasing value announced later.
        to: u64,
    },
    /// A red line moved backwards within one engine incarnation.
    RedLineRegression {
        /// Reporting replica.
        node: u32,
        /// The red line it had reached.
        from: u64,
        /// The smaller value announced later.
        to: u64,
    },
    /// A recovery restored a green count *larger* than the green line
    /// the replica had ever announced before crashing — stable storage
    /// cannot know more than the live engine did.
    RecoveryOvershoot {
        /// The recovering replica.
        node: u32,
        /// The green count it reloaded from disk.
        restored: u64,
        /// The largest green line it announced before the crash.
        last_seen: u64,
    },
    /// Safe delivery ⇒ eventual green (§4.3): a surviving replica ended
    /// the run with an action stuck at yellow after the heal-and-drain
    /// window, i.e. a globally ordered action never reached the global
    /// persistent order.
    UnresolvedYellow {
        /// The surviving replica.
        node: u32,
        /// Creator of the stuck action.
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
    },
    /// Durability (§4.3, the `vulnerable`-record argument): a green
    /// action was *lost* — some replica claimed a green position during
    /// the run, but a surviving replica ended the run with a green line
    /// below it. Once an action is green it is globally ordered and
    /// durable at every member of the installing primary component;
    /// crashes, torn writes and single stale sectors may delay but never
    /// erase it, because recovery re-fetches missing actions from peers
    /// during the exchange round.
    GreenActionLost {
        /// The surviving replica that fell short.
        node: u32,
        /// Its green line at the end of the run.
        final_green: u64,
        /// The green count the run's claims require (highest claimed
        /// position + 1).
        needed: u64,
    },
    /// Fast path, receipt-time mirror (DESIGN.md §4e): an action was
    /// fast-committed although, when it turned red at its origin, a
    /// conflicting action from another creator was in flight (red or
    /// yellow, not yet green) there — the engine's conflict check must
    /// have demoted it. `other == action` flags an action whose own
    /// footprint was unbounded, which is never fast-eligible.
    FastCommitConflict {
        /// `(creator, action_seq)` of the fast-committed action.
        action: (u32, u64),
        /// The in-flight conflicting action it should have demoted for.
        other: (u32, u64),
    },
    /// Fast path: a fast-committed action never reached the global
    /// persistent order — the FastAck quorum guarantees it survives
    /// into every subsequent primary component, so after the heal-and-
    /// drain window it must be green somewhere (and
    /// [`Self::GreenActionLost`] then covers every survivor).
    FastCommitNeverGreen {
        /// `(creator, action_seq)` of the lost fast commit.
        action: (u32, u64),
    },
    /// Fast path, the revocation clause: a *conflicting* action the
    /// origin had never seen at receipt time ended up green at a lower
    /// global position than the fast-committed action — the reply the
    /// client already holds was computed from a prefix that is not a
    /// prefix of the final total order.
    FastCommitRevoked {
        /// `(creator, action_seq)` of the fast-committed action.
        action: (u32, u64),
        /// Its final global green position.
        position: u64,
        /// The conflicting action ordered ahead of it.
        other: (u32, u64),
        /// The conflicting action's (lower) green position.
        other_position: u64,
    },
    /// Read leases (DESIGN.md §4f): a linearizable read served locally
    /// under a lease returned a row version older than the number of
    /// strongly-acknowledged writes to that row that preceded the read
    /// in (virtual) real time. Every green/fast acknowledgement is a
    /// linearization point; a lease read served after it must observe
    /// the write. The check is a *necessary* condition — unacked green
    /// writes inflate `version`, so it can only under-approximate — but
    /// it has no false positives and catches the canonical stale-holder
    /// shapes (an expired lease still being served, a partitioned
    /// ex-member answering from a frozen green prefix).
    StaleLinearizableRead {
        /// The replica that served the stale read.
        node: u32,
        /// Fingerprint of the read row.
        key_fp: u64,
        /// The row version the read returned.
        version: u64,
        /// Distinct strongly-acked writes to that row before the read.
        acked_writes: u64,
    },
    /// Read leases: two replicas held leases sealed to *different*
    /// configurations at overlapping (virtual) times. All members of
    /// one regular primary configuration hold leases simultaneously by
    /// design; the timing discipline (2·heartbeat + lease duration <
    /// failure-detection timeout) must guarantee every old-configuration
    /// lease has drained before a new configuration can install and
    /// grant. Intervals are clipped at the holder's next transitional
    /// configuration or crash, mirroring the engine's conservative
    /// expiry.
    LeaseOverlap {
        /// First holder and the `(conf_seq, coordinator)` of its lease.
        a: (u32, (u64, u32)),
        /// Second holder and the `(conf_seq, coordinator)` of its lease.
        b: (u32, (u64, u32)),
    },
    /// EVS agreed order: two replicas delivered *different senders* at
    /// the same `(configuration, slot)`.
    DeliveryMismatch {
        /// Sequence number of the configuration.
        conf_seq: u64,
        /// Coordinator of the configuration.
        coordinator: u32,
        /// The agreed-order slot in dispute.
        seq: u64,
        /// First replica and the sender it delivered.
        a: (u32, u32),
        /// Second replica and the sender it delivered.
        b: (u32, u32),
    },
    /// EVS agreed order: one replica's delivery slots within a single
    /// configuration did not strictly increase.
    DeliverySeqRegression {
        /// Reporting replica.
        node: u32,
        /// Sequence number of the configuration.
        conf_seq: u64,
        /// Coordinator of the configuration.
        coordinator: u32,
        /// The slot it had reached.
        from: u64,
        /// The non-increasing slot announced later.
        to: u64,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::GreenOrderConflict { position, a, b } => write!(
                f,
                "green order conflict at position {position}: node {} greened \
                 ({}, {}), node {} greened ({}, {})",
                a.0, a.1 .0, a.1 .1, b.0, b.1 .0, b.1 .1
            ),
            TraceViolation::ColorRegression {
                node,
                creator,
                action_seq,
                had,
                got,
            } => write!(
                f,
                "color regression at node {node}: action ({creator}, {action_seq}) \
                 was {had:?}, later announced {got:?}"
            ),
            TraceViolation::GreenLineRegression { node, from, to } => {
                write!(f, "green line at node {node} went {from} -> {to}")
            }
            TraceViolation::RedLineRegression { node, from, to } => {
                write!(f, "red line at node {node} went {from} -> {to}")
            }
            TraceViolation::RecoveryOvershoot {
                node,
                restored,
                last_seen,
            } => write!(
                f,
                "node {node} recovered green count {restored} but had only \
                 announced {last_seen} before crashing"
            ),
            TraceViolation::UnresolvedYellow {
                node,
                creator,
                action_seq,
            } => write!(
                f,
                "action ({creator}, {action_seq}) still yellow at surviving \
                 node {node} at quiescence"
            ),
            TraceViolation::GreenActionLost {
                node,
                final_green,
                needed,
            } => write!(
                f,
                "green action lost: node {node} ended with green line \
                 {final_green} but the run greened {needed} positions"
            ),
            TraceViolation::FastCommitConflict { action, other } => {
                if action == other {
                    write!(
                        f,
                        "action ({}, {}) fast-committed with an unbounded footprint",
                        action.0, action.1
                    )
                } else {
                    write!(
                        f,
                        "action ({}, {}) fast-committed while conflicting action \
                         ({}, {}) was in flight at its origin",
                        action.0, action.1, other.0, other.1
                    )
                }
            }
            TraceViolation::FastCommitNeverGreen { action } => write!(
                f,
                "fast-committed action ({}, {}) never reached the global \
                 persistent order",
                action.0, action.1
            ),
            TraceViolation::FastCommitRevoked {
                action,
                position,
                other,
                other_position,
            } => write!(
                f,
                "fast commit revoked: action ({}, {}) greened at position \
                 {position} but conflicting action ({}, {}), unseen at its \
                 origin at receipt time, greened ahead at {other_position}",
                action.0, action.1, other.0, other.1
            ),
            TraceViolation::StaleLinearizableRead {
                node,
                key_fp,
                version,
                acked_writes,
            } => write!(
                f,
                "stale linearizable read at node {node}: row {key_fp:#018x} \
                 served at version {version} after {acked_writes} acknowledged \
                 writes"
            ),
            TraceViolation::LeaseOverlap { a, b } => write!(
                f,
                "lease overlap: node {} held a lease for conf ({}, {}) while \
                 node {} held one for conf ({}, {})",
                a.0, a.1 .0, a.1 .1, b.0, b.1 .0, b.1 .1
            ),
            TraceViolation::DeliveryMismatch {
                conf_seq,
                coordinator,
                seq,
                a,
                b,
            } => write!(
                f,
                "delivery mismatch in conf ({conf_seq}, {coordinator}) slot {seq}: \
                 node {} delivered sender {}, node {} delivered sender {}",
                a.0, a.1, b.0, b.1
            ),
            TraceViolation::DeliverySeqRegression {
                node,
                conf_seq,
                coordinator,
                from,
                to,
            } => write!(
                f,
                "delivery slots at node {node} in conf ({conf_seq}, {coordinator}) \
                 went {from} -> {to}"
            ),
        }
    }
}

impl std::error::Error for TraceViolation {}

/// What a passing [`check_trace`] covered, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events walked.
    pub events: u64,
    /// Green positions cross-checked between at least two replicas.
    pub green_positions_agreed: u64,
    /// Agreed-order delivery slots cross-checked between at least two
    /// replicas.
    pub deliveries_agreed: u64,
    /// Fast commits checked against their receipt-time snapshot and,
    /// at end of run, against the global green order.
    pub fast_commits_checked: u64,
    /// Lease-served linearizable reads checked against the acked-write
    /// counters.
    pub lease_reads_checked: u64,
    /// Lease grant/renewal intervals checked for cross-configuration
    /// overlap.
    pub lease_grants_checked: u64,
}

fn rank(c: EventColor) -> u8 {
    match c {
        EventColor::Red => 0,
        EventColor::Yellow => 1,
        EventColor::Green => 2,
        EventColor::White => 3,
    }
}

/// Replays the typed event log and checks every trace oracle.
///
/// `survivors` are the raw node indices still in the system at the end
/// of the run (non-crashed, non-departed); the eventual-green oracle
/// only applies to them — a departed or down replica is allowed to take
/// unresolved yellows to its grave.
///
/// Per-incarnation state (colors, green/red lines, delivery slots) is
/// reset at each [`ProtocolEvent::EngineCrashed`], because a recovering
/// engine legitimately re-announces persisted actions from red upwards.
/// The cross-replica green-position map is **never** reset: a green mark
/// is a claim about the global order, and the global order has no
/// incarnations.
pub fn check_trace(
    events: &[RecordedEvent],
    survivors: &BTreeSet<u32>,
) -> Result<TraceStats, TraceViolation> {
    let mut stats = TraceStats::default();

    // position -> (first claiming node, (creator, action_seq))
    let mut global_green: BTreeMap<u64, (u32, (u32, u64))> = BTreeMap::new();
    // node -> (creator, action_seq) of the last green mark awaiting its
    // GreenLineAdvance (emitted back-to-back by the engine).
    let mut pending_green: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    // node -> action -> highest color this incarnation
    let mut colors: BTreeMap<u32, BTreeMap<(u32, u64), EventColor>> = BTreeMap::new();
    // node -> last announced green/red line this incarnation
    let mut green_line: BTreeMap<u32, u64> = BTreeMap::new();
    let mut red_line: BTreeMap<u32, u64> = BTreeMap::new();
    // node -> largest green line ever announced (across incarnations)
    let mut best_green: BTreeMap<u32, u64> = BTreeMap::new();
    // node -> green line at the latest event affecting it (advances and
    // recoveries; NOT cleared at crash — this is the end-of-run value
    // the durability oracle compares against the global claims)
    let mut final_green: BTreeMap<u32, u64> = BTreeMap::new();
    // (conf_seq, coordinator, slot) -> (first delivering node, sender)
    let mut deliveries: BTreeMap<(u64, u32, u64), (u32, u32)> = BTreeMap::new();
    // (node, conf_seq, coordinator) -> last delivered slot
    let mut deliv_seq: BTreeMap<(u32, u64, u32), u64> = BTreeMap::new();

    // --- Fast-path (commutativity) oracle state. Inert unless the run
    // emitted `ActionFootprint`/`FastCommit` events (fast path on).
    //
    // action -> static conflict class exported at creation time.
    let mut footprints: BTreeMap<(u32, u64), ClassDigest> = BTreeMap::new();
    // node -> actions currently red/yellow there (mirrors the engine's
    // in-flight set the receipt-time conflict check scans).
    let mut inflight: BTreeMap<u32, BTreeSet<(u32, u64)>> = BTreeMap::new();
    // (node, action) -> index of the first event that ordered the
    // action at that node. Cumulative across incarnations: used to
    // decide whether an origin had seen a conflicting action before it
    // promised a fast commit.
    let mut first_seen: BTreeMap<(u32, (u32, u64)), u64> = BTreeMap::new();
    // action -> receipt-time conflict snapshot at its origin: `None` =
    // clean, `Some(other)` = `other` was in flight and conflicting
    // (`other == action` encodes an unbounded own footprint). Mirrors
    // the engine's check, so a `FastCommit` against a non-clean
    // snapshot is a violated promise.
    let mut fast_snapshot: BTreeMap<(u32, u64), Option<(u32, u64)>> = BTreeMap::new();
    // fast-committed action -> event index of its receipt-time check.
    let mut fast_committed: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    // action -> its agreed global green position (0-based).
    let mut green_position: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    // Fingerprint -> greened actions touching it (read or write side),
    // so the end-of-run revocation scan is bucket-local instead of
    // quadratic over the full green history.
    let mut greens_by_fp: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
    // Greened actions with an unbounded footprint side: they conflict
    // with (nearly) everything, so every revocation scan visits them.
    let mut unbounded_greens: Vec<(u32, u64)> = Vec::new();

    // --- Read-lease oracle state. Inert unless the run emitted
    // `ReadServed`/`UpdateAcked`/`LeaseGranted` events (read leases on).
    //
    // Actions already counted as strong acknowledgements. An action is
    // one linearization point no matter how many times its ack is
    // re-announced.
    let mut acked: BTreeSet<(u32, u64)> = BTreeSet::new();
    // write fingerprint -> strongly-acked writes touching it so far.
    let mut acked_writes_by_fp: BTreeMap<u64, u64> = BTreeMap::new();
    // One record per lease grant/renewal, in log (= virtual-time) order.
    struct LeaseGrant {
        /// Position in the event log (tie-break for same-nanosecond cuts).
        idx: u64,
        /// Grant instant, nanoseconds.
        start: u64,
        /// Scheduled expiry, nanoseconds.
        expires: u64,
        /// Holder.
        node: u32,
        /// Sealing configuration: (conf_seq, coordinator).
        conf: (u64, u32),
    }
    let mut lease_grants: Vec<LeaseGrant> = Vec::new();
    // node -> (log index, nanos) of its transitional-config and crash
    // events — the instants the engine conservatively expires a lease.
    let mut lease_cuts: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    let mut event_idx: u64 = 0;

    for rec in events {
        stats.events += 1;
        event_idx += 1;
        match rec.event {
            ProtocolEvent::ActionOrdered {
                node,
                creator,
                action_seq,
                color,
            } => {
                let per_node = colors.entry(node).or_default();
                let entry = per_node.entry((creator, action_seq)).or_insert(color);
                if rank(color) < rank(*entry) {
                    return Err(TraceViolation::ColorRegression {
                        node,
                        creator,
                        action_seq,
                        had: *entry,
                        got: color,
                    });
                }
                *entry = color;
                if color == EventColor::Green {
                    pending_green.insert(node, (creator, action_seq));
                }
                let id = (creator, action_seq);
                first_seen.entry((node, id)).or_insert(event_idx);
                let node_inflight = inflight.entry(node).or_default();
                if rank(color) <= 1 {
                    node_inflight.insert(id);
                } else {
                    node_inflight.remove(&id);
                }
                // An action ordered red at its own origin: this is the
                // moment the engine runs its fast-path conflict check,
                // so mirror it. First ordering only — a re-ordering
                // after a crash can no longer fast-commit (the pending
                // reply died with the incarnation).
                if color == EventColor::Red && node == creator {
                    if let Some(fd) = footprints.get(&id) {
                        if let Entry::Vacant(slot) = fast_snapshot.entry(id) {
                            let conflict = if !fd.fast_eligible() {
                                Some(id)
                            } else {
                                node_inflight
                                    .iter()
                                    .filter(|&&(c, _)| c != creator)
                                    .find_map(|other| match footprints.get(other) {
                                        Some(od) => digests_conflict(fd, od).then_some(*other),
                                        // Bodies without an exported
                                        // class (reconfigurations, lost
                                        // footprints) are conservatively
                                        // conflicting, as in the engine.
                                        None => Some(*other),
                                    })
                            };
                            slot.insert(conflict);
                        }
                    }
                }
            }
            ProtocolEvent::GreenLineAdvance { node, green } => {
                if let Some(&prev) = green_line.get(&node) {
                    if green <= prev {
                        return Err(TraceViolation::GreenLineRegression {
                            node,
                            from: prev,
                            to: green,
                        });
                    }
                }
                green_line.insert(node, green);
                final_green.insert(node, green);
                let best = best_green.entry(node).or_insert(0);
                *best = (*best).max(green);
                if let Some(id) = pending_green.remove(&node) {
                    let position = green - 1;
                    match global_green.get(&position) {
                        None => {
                            global_green.insert(position, (node, id));
                            green_position.entry(id).or_insert(position);
                            if let Some(fd) = footprints.get(&id) {
                                if fd.writes_unbounded || fd.reads_unbounded {
                                    unbounded_greens.push(id);
                                }
                                let mut fps: Vec<u64> =
                                    fd.writes.iter().chain(fd.reads.iter()).copied().collect();
                                fps.sort_unstable();
                                fps.dedup();
                                for fp in fps {
                                    greens_by_fp.entry(fp).or_default().push(id);
                                }
                            }
                        }
                        Some(&(first_node, first_id)) => {
                            if first_id != id {
                                return Err(TraceViolation::GreenOrderConflict {
                                    position,
                                    a: (first_node, first_id),
                                    b: (node, id),
                                });
                            }
                            stats.green_positions_agreed += 1;
                        }
                    }
                }
            }
            ProtocolEvent::RedLineAdvance { node, red } => {
                if let Some(&prev) = red_line.get(&node) {
                    if red < prev {
                        return Err(TraceViolation::RedLineRegression {
                            node,
                            from: prev,
                            to: red,
                        });
                    }
                }
                red_line.insert(node, red);
            }
            ProtocolEvent::EngineCrashed { node } => {
                colors.remove(&node);
                pending_green.remove(&node);
                green_line.remove(&node);
                red_line.remove(&node);
                inflight.remove(&node);
                deliv_seq.retain(|&(n, _, _), _| n != node);
                lease_cuts
                    .entry(node)
                    .or_default()
                    .push((event_idx, rec.at_nanos));
            }
            ProtocolEvent::EngineRecovered { node, green } => {
                if let Some(&best) = best_green.get(&node) {
                    if green > best {
                        return Err(TraceViolation::RecoveryOvershoot {
                            node,
                            restored: green,
                            last_seen: best,
                        });
                    }
                }
                // The restored green count is the floor for this
                // incarnation's strictly-increasing advances.
                if green > 0 {
                    green_line.insert(node, green);
                }
                final_green.insert(node, green);
            }
            ProtocolEvent::Delivered {
                node,
                conf_seq,
                coordinator,
                seq,
                sender,
                in_transitional: _,
            } => {
                match deliveries.get(&(conf_seq, coordinator, seq)) {
                    None => {
                        deliveries.insert((conf_seq, coordinator, seq), (node, sender));
                    }
                    Some(&(first_node, first_sender)) => {
                        if first_sender != sender {
                            return Err(TraceViolation::DeliveryMismatch {
                                conf_seq,
                                coordinator,
                                seq,
                                a: (first_node, first_sender),
                                b: (node, sender),
                            });
                        }
                        stats.deliveries_agreed += 1;
                    }
                }
                if let Some(&prev) = deliv_seq.get(&(node, conf_seq, coordinator)) {
                    if seq <= prev {
                        return Err(TraceViolation::DeliverySeqRegression {
                            node,
                            conf_seq,
                            coordinator,
                            from: prev,
                            to: seq,
                        });
                    }
                }
                deliv_seq.insert((node, conf_seq, coordinator), seq);
            }
            ProtocolEvent::ActionFootprint {
                node,
                action_seq,
                ref writes,
                writes_unbounded,
                ref reads,
                reads_unbounded,
                commutative,
                timestamped,
            } => {
                footprints.insert(
                    (node, action_seq),
                    ClassDigest {
                        writes: writes.clone(),
                        writes_unbounded,
                        reads: reads.clone(),
                        reads_unbounded,
                        commutative,
                        timestamped,
                    },
                );
            }
            ProtocolEvent::FastCommit { node, action_seq } => {
                let id = (node, action_seq);
                match fast_snapshot.get(&id) {
                    // The receipt-time mirror of the engine's check: a
                    // fast commit against a conflicting in-flight action
                    // (or with no recorded clean snapshot at all) is a
                    // promise the green order may break.
                    None => {
                        return Err(TraceViolation::FastCommitConflict {
                            action: id,
                            other: id,
                        });
                    }
                    Some(&Some(other)) => {
                        return Err(TraceViolation::FastCommitConflict { action: id, other });
                    }
                    Some(&None) => {
                        stats.fast_commits_checked += 1;
                        let receipt_idx = first_seen.get(&(node, id)).copied().unwrap_or(event_idx);
                        fast_committed.entry(id).or_insert(receipt_idx);
                    }
                }
            }
            ProtocolEvent::TransitionalConfig { node, .. } => {
                lease_cuts
                    .entry(node)
                    .or_default()
                    .push((event_idx, rec.at_nanos));
            }
            ProtocolEvent::UpdateAcked {
                creator,
                action_seq,
                ..
            } => {
                let id = (creator, action_seq);
                if acked.insert(id) {
                    if let Some(fd) = footprints.get(&id) {
                        // Unbounded write sets cannot be attributed to
                        // a row; skipping them keeps the staleness
                        // check a sound necessary condition.
                        if !fd.writes_unbounded {
                            let mut fps = fd.writes.clone();
                            fps.sort_unstable();
                            fps.dedup();
                            for fp in fps {
                                *acked_writes_by_fp.entry(fp).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            // Only lease-served linearizable reads are checked: the
            // engine answers them without touching the total order,
            // so only the lease discipline keeps them fresh. Reads
            // routed through the ordered path are linearized by the
            // green order itself (and checked by the green-position
            // oracles); their serve instant can legitimately trail
            // their linearization point, so an ack-before-serve
            // comparison would false-positive on them. Snapshot and
            // overlay tiers promise no linearizability at all.
            ProtocolEvent::ReadServed {
                node,
                key_fp,
                tier: ReadTier::LeaseLinearizable,
                version,
            } => {
                stats.lease_reads_checked += 1;
                let acked_writes = acked_writes_by_fp.get(&key_fp).copied().unwrap_or(0);
                if version < acked_writes {
                    return Err(TraceViolation::StaleLinearizableRead {
                        node,
                        key_fp,
                        version,
                        acked_writes,
                    });
                }
            }
            ProtocolEvent::LeaseGranted {
                node,
                conf_seq,
                coordinator,
                expires_nanos,
                renewal: _,
            } => {
                lease_grants.push(LeaseGrant {
                    idx: event_idx,
                    start: rec.at_nanos,
                    expires: expires_nanos,
                    node,
                    conf: (conf_seq, coordinator),
                });
            }
            _ => {}
        }
    }

    // Lease safety: grant intervals sealed to *different* configurations
    // must be pairwise disjoint (co-members of one configuration hold
    // leases simultaneously by design). Each interval is clipped at the
    // holder's next transitional configuration or crash, mirroring the
    // engine's conservative expiry; what remains is exactly the window
    // in which the holder would answer linearizable reads locally, so
    // any cross-configuration overlap means a stale holder could race a
    // new primary's writes.
    let mut live_ends: BTreeMap<(u64, u32), (u64, u32)> = BTreeMap::new();
    for grant in &lease_grants {
        stats.lease_grants_checked += 1;
        let cut = lease_cuts
            .get(&grant.node)
            .and_then(|cuts| cuts.iter().find(|&&(idx, _)| idx > grant.idx))
            .map(|&(_, nanos)| nanos);
        let end = match cut {
            Some(c) => grant.expires.min(c),
            None => grant.expires,
        };
        if end <= grant.start {
            continue;
        }
        for (&other_conf, &(other_end, other_node)) in &live_ends {
            if other_conf != grant.conf && other_end > grant.start {
                return Err(TraceViolation::LeaseOverlap {
                    a: (other_node, other_conf),
                    b: (grant.node, grant.conf),
                });
            }
        }
        let slot = live_ends.entry(grant.conf).or_insert((end, grant.node));
        if end > slot.0 {
            *slot = (end, grant.node);
        }
    }

    // Durability over the surviving membership: every green position
    // any replica ever claimed must be covered by every survivor's
    // final green line — a green action is never lost, no matter what
    // crashes, torn writes or (single) stale sectors the run injected.
    if let Some((&p_max, _)) = global_green.iter().next_back() {
        let needed = p_max + 1;
        for &node in survivors {
            let have = final_green.get(&node).copied().unwrap_or(0);
            if have < needed {
                return Err(TraceViolation::GreenActionLost {
                    node,
                    final_green: have,
                    needed,
                });
            }
        }
    }

    // The fast-commit promise, end to end. Every acknowledged fast
    // commit must (B) reach the global persistent order — the client
    // was told its update is durable — and (C) must not be preceded in
    // that order by any conflicting action its origin had not yet seen
    // when it ran the receipt-time check: such a predecessor could have
    // changed the answer the fast path already returned.
    for (&f, &receipt_idx) in &fast_committed {
        let Some(&pf) = green_position.get(&f) else {
            return Err(TraceViolation::FastCommitNeverGreen { action: f });
        };
        let fd = footprints
            .get(&f)
            .expect("fast-committed implies a recorded footprint");
        // Bucket-local candidate set: conflicting predecessors must
        // share a row fingerprint with `f` or carry an unbounded side.
        let mut candidates: BTreeSet<(u32, u64)> = BTreeSet::new();
        for fp in fd.writes.iter().chain(fd.reads.iter()) {
            if let Some(bucket) = greens_by_fp.get(fp) {
                candidates.extend(bucket.iter().copied());
            }
        }
        candidates.extend(unbounded_greens.iter().copied());
        for g in candidates {
            if g.0 == f.0 {
                continue; // per-creator FIFO fixes same-creator order
            }
            let Some(&pg) = green_position.get(&g) else {
                continue;
            };
            if pg >= pf {
                continue; // ordered after the fast commit: harmless
            }
            let gd = footprints
                .get(&g)
                .expect("indexed greens all have footprints");
            if !digests_conflict(fd, gd) {
                continue;
            }
            let seen = first_seen.get(&(f.0, g)).copied();
            if seen.is_none_or(|s| s >= receipt_idx) {
                return Err(TraceViolation::FastCommitRevoked {
                    action: f,
                    position: pf,
                    other: g,
                    other_position: pg,
                });
            }
        }
    }

    // Safe delivery ⇒ eventual green, over the surviving membership.
    for (&node, per_node) in &colors {
        if !survivors.contains(&node) {
            continue;
        }
        for (&(creator, action_seq), &color) in per_node {
            if color == EventColor::Yellow {
                return Err(TraceViolation::UnresolvedYellow {
                    node,
                    creator,
                    action_seq,
                });
            }
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use todr_sim::ProtocolEvent as E;

    fn rec(event: E) -> RecordedEvent {
        RecordedEvent {
            at_nanos: 0,
            actor: 0,
            group: 0,
            event,
        }
    }

    fn green_mark(node: u32, creator: u32, action_seq: u64, green: u64) -> Vec<RecordedEvent> {
        vec![
            rec(E::ActionOrdered {
                node,
                creator,
                action_seq,
                color: EventColor::Green,
            }),
            rec(E::GreenLineAdvance { node, green }),
        ]
    }

    #[test]
    fn agreeing_histories_pass() {
        let mut events = Vec::new();
        for node in 0..3 {
            events.extend(green_mark(node, 0, 1, 1));
            events.extend(green_mark(node, 1, 1, 2));
        }
        let survivors: BTreeSet<u32> = (0..3).collect();
        let stats = check_trace(&events, &survivors).unwrap();
        assert_eq!(stats.green_positions_agreed, 4);
    }

    #[test]
    fn conflicting_green_positions_are_caught() {
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        events.extend(green_mark(1, 2, 5, 1)); // different action at position 0
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(
            err,
            TraceViolation::GreenOrderConflict { position: 0, .. }
        ));
    }

    #[test]
    fn green_line_must_strictly_increase_within_incarnation() {
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
        ];
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(err, TraceViolation::GreenLineRegression { .. }));
    }

    #[test]
    fn crash_resets_incarnation_state() {
        // Green line drops across a crash/recovery: legal.
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::EngineCrashed { node: 0 }),
            rec(E::EngineRecovered { node: 0, green: 3 }),
            rec(E::GreenLineAdvance { node: 0, green: 4 }),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn recovery_cannot_restore_more_than_was_announced() {
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::EngineCrashed { node: 0 }),
            rec(E::EngineRecovered { node: 0, green: 9 }),
        ];
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(
            err,
            TraceViolation::RecoveryOvershoot {
                restored: 9,
                last_seen: 5,
                ..
            }
        ));
    }

    #[test]
    fn color_regression_is_caught_and_reset_by_crash() {
        let regress = vec![
            rec(E::ActionOrdered {
                node: 0,
                creator: 1,
                action_seq: 1,
                color: EventColor::Green,
            }),
            rec(E::ActionOrdered {
                node: 0,
                creator: 1,
                action_seq: 1,
                color: EventColor::Red,
            }),
        ];
        assert!(matches!(
            check_trace(&regress, &BTreeSet::new()).unwrap_err(),
            TraceViolation::ColorRegression { .. }
        ));

        // The same re-announcement after a crash is a legal replay.
        let with_crash = vec![
            regress[0].clone(),
            rec(E::EngineCrashed { node: 0 }),
            regress[1].clone(),
        ];
        check_trace(&with_crash, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn unresolved_yellow_flagged_only_for_survivors() {
        let events = vec![rec(E::ActionOrdered {
            node: 2,
            creator: 0,
            action_seq: 7,
            color: EventColor::Yellow,
        })];
        check_trace(&events, &BTreeSet::new()).unwrap();
        let survivors: BTreeSet<u32> = [2].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::UnresolvedYellow {
                node: 2,
                creator: 0,
                action_seq: 7
            }
        ));
    }

    #[test]
    fn lost_green_action_is_caught_at_survivors() {
        // Node 0 greens two positions, crashes, and recovers from a
        // stable store that only knew one of them — and never catches
        // back up. The greened position 1 has been lost at a survivor.
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        events.extend(green_mark(0, 0, 2, 2));
        events.push(rec(E::EngineCrashed { node: 0 }));
        events.push(rec(E::EngineRecovered { node: 0, green: 1 }));

        // A non-survivor ending short is legal (it may still be down).
        check_trace(&events, &BTreeSet::new()).unwrap();

        let survivors: BTreeSet<u32> = [0].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::GreenActionLost {
                node: 0,
                final_green: 1,
                needed: 2,
            }
        ));

        // Catching back up to the claimed prefix clears the violation.
        events.extend(green_mark(0, 0, 2, 2));
        check_trace(&events, &survivors).unwrap();
    }

    #[test]
    fn survivor_that_never_greened_loses_every_claimed_position() {
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        let survivors: BTreeSet<u32> = [3].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::GreenActionLost {
                node: 3,
                final_green: 0,
                needed: 1,
            }
        ));
    }

    #[test]
    fn delivery_sender_mismatch_is_caught() {
        let d = |node, sender| {
            rec(E::Delivered {
                node,
                conf_seq: 3,
                coordinator: 0,
                seq: 10,
                sender,
                in_transitional: false,
            })
        };
        check_trace(&[d(0, 4), d(1, 4)], &BTreeSet::new()).unwrap();
        assert!(matches!(
            check_trace(&[d(0, 4), d(1, 2)], &BTreeSet::new()).unwrap_err(),
            TraceViolation::DeliveryMismatch { seq: 10, .. }
        ));
    }

    #[test]
    fn delivery_slots_strictly_increase_per_node_and_conf() {
        let d = |seq| {
            rec(E::Delivered {
                node: 0,
                conf_seq: 3,
                coordinator: 0,
                seq,
                sender: 1,
                in_transitional: false,
            })
        };
        check_trace(&[d(1), d(2), d(5)], &BTreeSet::new()).unwrap();
        assert!(matches!(
            check_trace(&[d(2), d(2)], &BTreeSet::new()).unwrap_err(),
            TraceViolation::DeliverySeqRegression { .. }
        ));
    }

    // --- fast-path oracle clauses ---

    /// Footprint event for a single-row write action.
    fn footprint(node: u32, action_seq: u64, row: u64) -> RecordedEvent {
        rec(E::ActionFootprint {
            node,
            action_seq,
            writes: vec![row],
            writes_unbounded: false,
            reads: vec![],
            reads_unbounded: false,
            commutative: false,
            timestamped: false,
        })
    }

    fn red(node: u32, creator: u32, action_seq: u64) -> RecordedEvent {
        rec(E::ActionOrdered {
            node,
            creator,
            action_seq,
            color: EventColor::Red,
        })
    }

    fn fast_commit(node: u32, action_seq: u64) -> RecordedEvent {
        rec(E::FastCommit { node, action_seq })
    }

    #[test]
    fn clean_fast_commit_that_greens_passes() {
        let mut events = vec![footprint(0, 1, 7), red(0, 0, 1), fast_commit(0, 1)];
        events.extend(green_mark(0, 0, 1, 1));
        let stats = check_trace(&events, &BTreeSet::new()).unwrap();
        assert_eq!(stats.fast_commits_checked, 1);
    }

    #[test]
    fn fast_commit_with_conflicting_inflight_action_is_flagged() {
        // Node 1's write to row 7 is red (in flight) at node 0 when
        // node 0's own action on the same row arrives back.
        let events = vec![
            footprint(0, 1, 7),
            footprint(1, 1, 7),
            red(0, 1, 1),
            red(0, 0, 1),
            fast_commit(0, 1),
        ];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitConflict {
                action: (0, 1),
                other: (1, 1),
            }
        ));
    }

    #[test]
    fn disjoint_inflight_actions_do_not_block_the_fast_commit() {
        let mut events = vec![
            footprint(0, 1, 7),
            footprint(1, 1, 9), // different row: commutes
            red(0, 1, 1),
            red(0, 0, 1),
            fast_commit(0, 1),
        ];
        events.extend(green_mark(0, 1, 1, 1));
        events.extend(green_mark(0, 0, 1, 2));
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn inflight_body_without_a_footprint_is_conservatively_conflicting() {
        let events = vec![
            footprint(0, 1, 7),
            red(0, 1, 5), // no ActionFootprint for (1, 5)
            red(0, 0, 1),
            fast_commit(0, 1),
        ];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitConflict {
                action: (0, 1),
                other: (1, 5),
            }
        ));
    }

    #[test]
    fn fast_commit_with_unbounded_footprint_is_flagged() {
        let events = vec![
            rec(E::ActionFootprint {
                node: 0,
                action_seq: 1,
                writes: vec![],
                writes_unbounded: true,
                reads: vec![],
                reads_unbounded: false,
                commutative: false,
                timestamped: false,
            }),
            red(0, 0, 1),
            fast_commit(0, 1),
        ];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitConflict {
                action: (0, 1),
                other: (0, 1),
            }
        ));
    }

    #[test]
    fn fast_commit_without_any_receipt_snapshot_is_flagged() {
        // A FastCommit with no prior own-red ordering (so no snapshot)
        // means the engine promised before the receipt check ran.
        let events = vec![footprint(0, 1, 7), fast_commit(0, 1)];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitConflict {
                action: (0, 1),
                other: (0, 1),
            }
        ));
    }

    #[test]
    fn fast_commit_that_never_greens_is_flagged() {
        let events = vec![footprint(0, 1, 7), red(0, 0, 1), fast_commit(0, 1)];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitNeverGreen { action: (0, 1) }
        ));
    }

    #[test]
    fn conflicting_unseen_predecessor_in_green_order_revokes_the_commit() {
        // Node 0 fast-commits its action on row 7, but a conflicting
        // action from node 1 — which node 0 had NOT seen at receipt
        // time — ends up *before* it in the global green order.
        let mut events = vec![
            footprint(0, 1, 7),
            footprint(1, 1, 7),
            red(0, 0, 1),
            fast_commit(0, 1),
        ];
        events.extend(green_mark(1, 1, 1, 1)); // (1,1) greens at position 0
        events.extend(green_mark(1, 0, 1, 2)); // (0,1) greens at position 1
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::FastCommitRevoked {
                action: (0, 1),
                position: 1,
                other: (1, 1),
                other_position: 0,
            }
        ));
    }

    #[test]
    fn conflicting_predecessor_seen_before_receipt_is_fine_once_green() {
        // Same shape, but node 0 greened the conflicting (1,1) BEFORE
        // its own receipt check: the dirty view already included it,
        // so the promise holds.
        let mut events = vec![footprint(0, 1, 7), footprint(1, 1, 7)];
        events.extend(green_mark(0, 1, 1, 1)); // (1,1) green at origin first
        events.push(red(0, 0, 1));
        events.push(fast_commit(0, 1));
        events.extend(green_mark(0, 0, 1, 2));
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    // --- read-lease oracle clauses ---

    fn rec_at(at_nanos: u64, event: E) -> RecordedEvent {
        RecordedEvent {
            at_nanos,
            actor: 0,
            group: 0,
            event,
        }
    }

    fn update_acked(creator: u32, action_seq: u64) -> RecordedEvent {
        rec(E::UpdateAcked {
            node: creator,
            creator,
            action_seq,
        })
    }

    fn read_served(node: u32, key_fp: u64, tier: ReadTier, version: u64) -> RecordedEvent {
        rec(E::ReadServed {
            node,
            key_fp,
            tier,
            version,
        })
    }

    fn lease(at: u64, node: u32, conf: (u64, u32), expires: u64) -> RecordedEvent {
        rec_at(
            at,
            E::LeaseGranted {
                node,
                conf_seq: conf.0,
                coordinator: conf.1,
                expires_nanos: expires,
                renewal: false,
            },
        )
    }

    #[test]
    fn fresh_lease_read_after_acked_write_passes() {
        let events = vec![
            footprint(0, 1, 7),
            update_acked(0, 1),
            read_served(1, 7, ReadTier::LeaseLinearizable, 1),
        ];
        let stats = check_trace(&events, &BTreeSet::new()).unwrap();
        assert_eq!(stats.lease_reads_checked, 1);
    }

    #[test]
    fn stale_lease_read_is_caught() {
        let events = vec![
            footprint(0, 1, 7),
            update_acked(0, 1),
            read_served(1, 7, ReadTier::LeaseLinearizable, 0),
        ];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::StaleLinearizableRead {
                node: 1,
                key_fp: 7,
                version: 0,
                acked_writes: 1,
            }
        ));
    }

    #[test]
    fn non_lease_tiers_are_exempt_from_the_staleness_clause() {
        // Ordered linearizable reads are linearized by the green order
        // itself; snapshot and overlay tiers promise no freshness.
        let mut events = vec![footprint(0, 1, 7), update_acked(0, 1)];
        for tier in [
            ReadTier::OrderedLinearizable,
            ReadTier::GreenSnapshot,
            ReadTier::RedOverlay,
        ] {
            events.push(read_served(1, 7, tier, 0));
        }
        let stats = check_trace(&events, &BTreeSet::new()).unwrap();
        assert_eq!(stats.lease_reads_checked, 0);
    }

    #[test]
    fn re_announced_acks_count_as_one_linearization_point() {
        let events = vec![
            footprint(0, 1, 7),
            update_acked(0, 1),
            update_acked(0, 1),
            read_served(1, 7, ReadTier::LeaseLinearizable, 1),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn acks_only_count_after_they_happened() {
        // The read precedes the second ack: version 1 is fresh enough.
        let events = vec![
            footprint(0, 1, 7),
            footprint(0, 2, 7),
            update_acked(0, 1),
            read_served(1, 7, ReadTier::LeaseLinearizable, 1),
            update_acked(0, 2),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn unattributable_acks_are_skipped() {
        // No footprint for (0, 5), and (0, 6) writes unbounded: neither
        // can be pinned to a row, so neither raises the freshness floor.
        let events = vec![
            rec(E::ActionFootprint {
                node: 0,
                action_seq: 6,
                writes: vec![],
                writes_unbounded: true,
                reads: vec![],
                reads_unbounded: false,
                commutative: false,
                timestamped: false,
            }),
            update_acked(0, 5),
            update_acked(0, 6),
            read_served(1, 7, ReadTier::LeaseLinearizable, 0),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn co_members_of_one_configuration_may_hold_leases_together() {
        let events = vec![
            lease(0, 0, (5, 0), 100),
            lease(10, 1, (5, 0), 110),
            lease(20, 2, (5, 0), 120),
        ];
        let stats = check_trace(&events, &BTreeSet::new()).unwrap();
        assert_eq!(stats.lease_grants_checked, 3);
    }

    #[test]
    fn overlapping_leases_from_different_configurations_are_caught() {
        let events = vec![lease(0, 0, (5, 0), 100), lease(50, 1, (6, 1), 150)];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::LeaseOverlap {
                a: (0, (5, 0)),
                b: (1, (6, 1)),
            }
        ));
    }

    #[test]
    fn expired_leases_do_not_overlap_a_later_configuration() {
        let events = vec![lease(0, 0, (5, 0), 40), lease(50, 1, (6, 1), 150)];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn transitional_config_clips_the_stale_holders_lease() {
        // Node 0's lease would run to t=100, but it saw a transitional
        // configuration at t=40 and expired it conservatively — so the
        // new configuration's grant at t=50 does not overlap.
        let events = vec![
            lease(0, 0, (5, 0), 100),
            rec_at(
                40,
                E::TransitionalConfig {
                    node: 0,
                    conf_seq: 5,
                },
            ),
            lease(50, 1, (6, 1), 150),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn crash_clips_the_stale_holders_lease() {
        let events = vec![
            lease(0, 0, (5, 0), 100),
            rec_at(40, E::EngineCrashed { node: 0 }),
            lease(50, 1, (6, 1), 150),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn only_the_holders_own_view_change_clips_its_lease() {
        // Node 2's transitional config says nothing about node 0's
        // lease: the overlap is still a violation.
        let events = vec![
            lease(0, 0, (5, 0), 100),
            rec_at(
                40,
                E::TransitionalConfig {
                    node: 2,
                    conf_seq: 5,
                },
            ),
            lease(50, 1, (6, 1), 150),
        ];
        assert!(matches!(
            check_trace(&events, &BTreeSet::new()).unwrap_err(),
            TraceViolation::LeaseOverlap { .. }
        ));
    }

    #[test]
    fn commutative_predecessor_does_not_revoke() {
        let cfp = |node, action_seq| {
            rec(E::ActionFootprint {
                node,
                action_seq,
                writes: vec![7],
                writes_unbounded: false,
                reads: vec![],
                reads_unbounded: false,
                commutative: true,
                timestamped: false,
            })
        };
        // Two commutative increments of the same row from different
        // creators: order-insensitive, so no conflict either at receipt
        // time or in the green order.
        let mut events = vec![cfp(0, 1), cfp(1, 1), red(0, 1, 1), red(0, 0, 1)];
        events.push(fast_commit(0, 1));
        events.extend(green_mark(1, 1, 1, 1));
        events.extend(green_mark(1, 0, 1, 2));
        check_trace(&events, &BTreeSet::new()).unwrap();
    }
}
