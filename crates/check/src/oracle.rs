//! Trace oracles: the paper's service properties checked over the typed
//! [`ProtocolEvent`] log of a finished run.
//!
//! Where [`todr_harness::checkers`] compares *final states* of live
//! replicas, these oracles replay the *whole history* and catch
//! violations that final-state comparison can miss (a green line that
//! regressed mid-run and recovered, two nodes that disagreed on a green
//! position that was later garbage-collected, a recovery that restored
//! more state than was ever persisted). Each oracle maps to a property
//! of the paper — see the per-variant documentation on
//! [`TraceViolation`] and DESIGN.md's "Checking" section.
//!
//! [`check_trace`] is a pure function of the event slice, so it can run
//! against a live world, a replayed counterexample, or a deserialized
//! event tail with identical results.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use todr_sim::{EventColor, ProtocolEvent, RecordedEvent};

/// A violated trace property.
///
/// `node`, `creator`, `sender` values are raw replica indices as carried
/// by [`ProtocolEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceViolation {
    /// Theorem 1 over the history: two replicas greened *different*
    /// actions at the same global green position.
    GreenOrderConflict {
        /// The disputed green position (0-based).
        position: u64,
        /// First replica and the `(creator, action_seq)` it greened.
        a: (u32, (u32, u64)),
        /// Second replica and the `(creator, action_seq)` it greened.
        b: (u32, (u32, u64)),
    },
    /// An action's color moved backwards (e.g. green, then re-announced
    /// yellow) within one engine incarnation — §3's knowledge levels
    /// only ever increase.
    ColorRegression {
        /// Reporting replica.
        node: u32,
        /// Creator of the action.
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
        /// The color the action had already reached.
        had: EventColor,
        /// The lower color announced later.
        got: EventColor,
    },
    /// A green line moved backwards (or stalled on a re-announcement)
    /// within one engine incarnation — the global persistent order is a
    /// strictly growing prefix.
    GreenLineRegression {
        /// Reporting replica.
        node: u32,
        /// The green line it had reached.
        from: u64,
        /// The non-increasing value announced later.
        to: u64,
    },
    /// A red line moved backwards within one engine incarnation.
    RedLineRegression {
        /// Reporting replica.
        node: u32,
        /// The red line it had reached.
        from: u64,
        /// The smaller value announced later.
        to: u64,
    },
    /// A recovery restored a green count *larger* than the green line
    /// the replica had ever announced before crashing — stable storage
    /// cannot know more than the live engine did.
    RecoveryOvershoot {
        /// The recovering replica.
        node: u32,
        /// The green count it reloaded from disk.
        restored: u64,
        /// The largest green line it announced before the crash.
        last_seen: u64,
    },
    /// Safe delivery ⇒ eventual green (§4.3): a surviving replica ended
    /// the run with an action stuck at yellow after the heal-and-drain
    /// window, i.e. a globally ordered action never reached the global
    /// persistent order.
    UnresolvedYellow {
        /// The surviving replica.
        node: u32,
        /// Creator of the stuck action.
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
    },
    /// Durability (§4.3, the `vulnerable`-record argument): a green
    /// action was *lost* — some replica claimed a green position during
    /// the run, but a surviving replica ended the run with a green line
    /// below it. Once an action is green it is globally ordered and
    /// durable at every member of the installing primary component;
    /// crashes, torn writes and single stale sectors may delay but never
    /// erase it, because recovery re-fetches missing actions from peers
    /// during the exchange round.
    GreenActionLost {
        /// The surviving replica that fell short.
        node: u32,
        /// Its green line at the end of the run.
        final_green: u64,
        /// The green count the run's claims require (highest claimed
        /// position + 1).
        needed: u64,
    },
    /// EVS agreed order: two replicas delivered *different senders* at
    /// the same `(configuration, slot)`.
    DeliveryMismatch {
        /// Sequence number of the configuration.
        conf_seq: u64,
        /// Coordinator of the configuration.
        coordinator: u32,
        /// The agreed-order slot in dispute.
        seq: u64,
        /// First replica and the sender it delivered.
        a: (u32, u32),
        /// Second replica and the sender it delivered.
        b: (u32, u32),
    },
    /// EVS agreed order: one replica's delivery slots within a single
    /// configuration did not strictly increase.
    DeliverySeqRegression {
        /// Reporting replica.
        node: u32,
        /// Sequence number of the configuration.
        conf_seq: u64,
        /// Coordinator of the configuration.
        coordinator: u32,
        /// The slot it had reached.
        from: u64,
        /// The non-increasing slot announced later.
        to: u64,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::GreenOrderConflict { position, a, b } => write!(
                f,
                "green order conflict at position {position}: node {} greened \
                 ({}, {}), node {} greened ({}, {})",
                a.0, a.1 .0, a.1 .1, b.0, b.1 .0, b.1 .1
            ),
            TraceViolation::ColorRegression {
                node,
                creator,
                action_seq,
                had,
                got,
            } => write!(
                f,
                "color regression at node {node}: action ({creator}, {action_seq}) \
                 was {had:?}, later announced {got:?}"
            ),
            TraceViolation::GreenLineRegression { node, from, to } => {
                write!(f, "green line at node {node} went {from} -> {to}")
            }
            TraceViolation::RedLineRegression { node, from, to } => {
                write!(f, "red line at node {node} went {from} -> {to}")
            }
            TraceViolation::RecoveryOvershoot {
                node,
                restored,
                last_seen,
            } => write!(
                f,
                "node {node} recovered green count {restored} but had only \
                 announced {last_seen} before crashing"
            ),
            TraceViolation::UnresolvedYellow {
                node,
                creator,
                action_seq,
            } => write!(
                f,
                "action ({creator}, {action_seq}) still yellow at surviving \
                 node {node} at quiescence"
            ),
            TraceViolation::GreenActionLost {
                node,
                final_green,
                needed,
            } => write!(
                f,
                "green action lost: node {node} ended with green line \
                 {final_green} but the run greened {needed} positions"
            ),
            TraceViolation::DeliveryMismatch {
                conf_seq,
                coordinator,
                seq,
                a,
                b,
            } => write!(
                f,
                "delivery mismatch in conf ({conf_seq}, {coordinator}) slot {seq}: \
                 node {} delivered sender {}, node {} delivered sender {}",
                a.0, a.1, b.0, b.1
            ),
            TraceViolation::DeliverySeqRegression {
                node,
                conf_seq,
                coordinator,
                from,
                to,
            } => write!(
                f,
                "delivery slots at node {node} in conf ({conf_seq}, {coordinator}) \
                 went {from} -> {to}"
            ),
        }
    }
}

impl std::error::Error for TraceViolation {}

/// What a passing [`check_trace`] covered, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events walked.
    pub events: u64,
    /// Green positions cross-checked between at least two replicas.
    pub green_positions_agreed: u64,
    /// Agreed-order delivery slots cross-checked between at least two
    /// replicas.
    pub deliveries_agreed: u64,
}

fn rank(c: EventColor) -> u8 {
    match c {
        EventColor::Red => 0,
        EventColor::Yellow => 1,
        EventColor::Green => 2,
        EventColor::White => 3,
    }
}

/// Replays the typed event log and checks every trace oracle.
///
/// `survivors` are the raw node indices still in the system at the end
/// of the run (non-crashed, non-departed); the eventual-green oracle
/// only applies to them — a departed or down replica is allowed to take
/// unresolved yellows to its grave.
///
/// Per-incarnation state (colors, green/red lines, delivery slots) is
/// reset at each [`ProtocolEvent::EngineCrashed`], because a recovering
/// engine legitimately re-announces persisted actions from red upwards.
/// The cross-replica green-position map is **never** reset: a green mark
/// is a claim about the global order, and the global order has no
/// incarnations.
pub fn check_trace(
    events: &[RecordedEvent],
    survivors: &BTreeSet<u32>,
) -> Result<TraceStats, TraceViolation> {
    let mut stats = TraceStats::default();

    // position -> (first claiming node, (creator, action_seq))
    let mut global_green: BTreeMap<u64, (u32, (u32, u64))> = BTreeMap::new();
    // node -> (creator, action_seq) of the last green mark awaiting its
    // GreenLineAdvance (emitted back-to-back by the engine).
    let mut pending_green: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    // node -> action -> highest color this incarnation
    let mut colors: BTreeMap<u32, BTreeMap<(u32, u64), EventColor>> = BTreeMap::new();
    // node -> last announced green/red line this incarnation
    let mut green_line: BTreeMap<u32, u64> = BTreeMap::new();
    let mut red_line: BTreeMap<u32, u64> = BTreeMap::new();
    // node -> largest green line ever announced (across incarnations)
    let mut best_green: BTreeMap<u32, u64> = BTreeMap::new();
    // node -> green line at the latest event affecting it (advances and
    // recoveries; NOT cleared at crash — this is the end-of-run value
    // the durability oracle compares against the global claims)
    let mut final_green: BTreeMap<u32, u64> = BTreeMap::new();
    // (conf_seq, coordinator, slot) -> (first delivering node, sender)
    let mut deliveries: BTreeMap<(u64, u32, u64), (u32, u32)> = BTreeMap::new();
    // (node, conf_seq, coordinator) -> last delivered slot
    let mut deliv_seq: BTreeMap<(u32, u64, u32), u64> = BTreeMap::new();

    for rec in events {
        stats.events += 1;
        match rec.event {
            ProtocolEvent::ActionOrdered {
                node,
                creator,
                action_seq,
                color,
            } => {
                let per_node = colors.entry(node).or_default();
                let entry = per_node.entry((creator, action_seq)).or_insert(color);
                if rank(color) < rank(*entry) {
                    return Err(TraceViolation::ColorRegression {
                        node,
                        creator,
                        action_seq,
                        had: *entry,
                        got: color,
                    });
                }
                *entry = color;
                if color == EventColor::Green {
                    pending_green.insert(node, (creator, action_seq));
                }
            }
            ProtocolEvent::GreenLineAdvance { node, green } => {
                if let Some(&prev) = green_line.get(&node) {
                    if green <= prev {
                        return Err(TraceViolation::GreenLineRegression {
                            node,
                            from: prev,
                            to: green,
                        });
                    }
                }
                green_line.insert(node, green);
                final_green.insert(node, green);
                let best = best_green.entry(node).or_insert(0);
                *best = (*best).max(green);
                if let Some(id) = pending_green.remove(&node) {
                    let position = green - 1;
                    match global_green.get(&position) {
                        None => {
                            global_green.insert(position, (node, id));
                        }
                        Some(&(first_node, first_id)) => {
                            if first_id != id {
                                return Err(TraceViolation::GreenOrderConflict {
                                    position,
                                    a: (first_node, first_id),
                                    b: (node, id),
                                });
                            }
                            stats.green_positions_agreed += 1;
                        }
                    }
                }
            }
            ProtocolEvent::RedLineAdvance { node, red } => {
                if let Some(&prev) = red_line.get(&node) {
                    if red < prev {
                        return Err(TraceViolation::RedLineRegression {
                            node,
                            from: prev,
                            to: red,
                        });
                    }
                }
                red_line.insert(node, red);
            }
            ProtocolEvent::EngineCrashed { node } => {
                colors.remove(&node);
                pending_green.remove(&node);
                green_line.remove(&node);
                red_line.remove(&node);
                deliv_seq.retain(|&(n, _, _), _| n != node);
            }
            ProtocolEvent::EngineRecovered { node, green } => {
                if let Some(&best) = best_green.get(&node) {
                    if green > best {
                        return Err(TraceViolation::RecoveryOvershoot {
                            node,
                            restored: green,
                            last_seen: best,
                        });
                    }
                }
                // The restored green count is the floor for this
                // incarnation's strictly-increasing advances.
                if green > 0 {
                    green_line.insert(node, green);
                }
                final_green.insert(node, green);
            }
            ProtocolEvent::Delivered {
                node,
                conf_seq,
                coordinator,
                seq,
                sender,
                in_transitional: _,
            } => {
                match deliveries.get(&(conf_seq, coordinator, seq)) {
                    None => {
                        deliveries.insert((conf_seq, coordinator, seq), (node, sender));
                    }
                    Some(&(first_node, first_sender)) => {
                        if first_sender != sender {
                            return Err(TraceViolation::DeliveryMismatch {
                                conf_seq,
                                coordinator,
                                seq,
                                a: (first_node, first_sender),
                                b: (node, sender),
                            });
                        }
                        stats.deliveries_agreed += 1;
                    }
                }
                if let Some(&prev) = deliv_seq.get(&(node, conf_seq, coordinator)) {
                    if seq <= prev {
                        return Err(TraceViolation::DeliverySeqRegression {
                            node,
                            conf_seq,
                            coordinator,
                            from: prev,
                            to: seq,
                        });
                    }
                }
                deliv_seq.insert((node, conf_seq, coordinator), seq);
            }
            _ => {}
        }
    }

    // Durability over the surviving membership: every green position
    // any replica ever claimed must be covered by every survivor's
    // final green line — a green action is never lost, no matter what
    // crashes, torn writes or (single) stale sectors the run injected.
    if let Some((&p_max, _)) = global_green.iter().next_back() {
        let needed = p_max + 1;
        for &node in survivors {
            let have = final_green.get(&node).copied().unwrap_or(0);
            if have < needed {
                return Err(TraceViolation::GreenActionLost {
                    node,
                    final_green: have,
                    needed,
                });
            }
        }
    }

    // Safe delivery ⇒ eventual green, over the surviving membership.
    for (&node, per_node) in &colors {
        if !survivors.contains(&node) {
            continue;
        }
        for (&(creator, action_seq), &color) in per_node {
            if color == EventColor::Yellow {
                return Err(TraceViolation::UnresolvedYellow {
                    node,
                    creator,
                    action_seq,
                });
            }
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use todr_sim::ProtocolEvent as E;

    fn rec(event: E) -> RecordedEvent {
        RecordedEvent {
            at_nanos: 0,
            actor: 0,
            group: 0,
            event,
        }
    }

    fn green_mark(node: u32, creator: u32, action_seq: u64, green: u64) -> Vec<RecordedEvent> {
        vec![
            rec(E::ActionOrdered {
                node,
                creator,
                action_seq,
                color: EventColor::Green,
            }),
            rec(E::GreenLineAdvance { node, green }),
        ]
    }

    #[test]
    fn agreeing_histories_pass() {
        let mut events = Vec::new();
        for node in 0..3 {
            events.extend(green_mark(node, 0, 1, 1));
            events.extend(green_mark(node, 1, 1, 2));
        }
        let survivors: BTreeSet<u32> = (0..3).collect();
        let stats = check_trace(&events, &survivors).unwrap();
        assert_eq!(stats.green_positions_agreed, 4);
    }

    #[test]
    fn conflicting_green_positions_are_caught() {
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        events.extend(green_mark(1, 2, 5, 1)); // different action at position 0
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(
            err,
            TraceViolation::GreenOrderConflict { position: 0, .. }
        ));
    }

    #[test]
    fn green_line_must_strictly_increase_within_incarnation() {
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
        ];
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(err, TraceViolation::GreenLineRegression { .. }));
    }

    #[test]
    fn crash_resets_incarnation_state() {
        // Green line drops across a crash/recovery: legal.
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::EngineCrashed { node: 0 }),
            rec(E::EngineRecovered { node: 0, green: 3 }),
            rec(E::GreenLineAdvance { node: 0, green: 4 }),
        ];
        check_trace(&events, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn recovery_cannot_restore_more_than_was_announced() {
        let events = vec![
            rec(E::GreenLineAdvance { node: 0, green: 5 }),
            rec(E::EngineCrashed { node: 0 }),
            rec(E::EngineRecovered { node: 0, green: 9 }),
        ];
        let err = check_trace(&events, &BTreeSet::new()).unwrap_err();
        assert!(matches!(
            err,
            TraceViolation::RecoveryOvershoot {
                restored: 9,
                last_seen: 5,
                ..
            }
        ));
    }

    #[test]
    fn color_regression_is_caught_and_reset_by_crash() {
        let regress = vec![
            rec(E::ActionOrdered {
                node: 0,
                creator: 1,
                action_seq: 1,
                color: EventColor::Green,
            }),
            rec(E::ActionOrdered {
                node: 0,
                creator: 1,
                action_seq: 1,
                color: EventColor::Red,
            }),
        ];
        assert!(matches!(
            check_trace(&regress, &BTreeSet::new()).unwrap_err(),
            TraceViolation::ColorRegression { .. }
        ));

        // The same re-announcement after a crash is a legal replay.
        let with_crash = vec![
            regress[0].clone(),
            rec(E::EngineCrashed { node: 0 }),
            regress[1].clone(),
        ];
        check_trace(&with_crash, &BTreeSet::new()).unwrap();
    }

    #[test]
    fn unresolved_yellow_flagged_only_for_survivors() {
        let events = vec![rec(E::ActionOrdered {
            node: 2,
            creator: 0,
            action_seq: 7,
            color: EventColor::Yellow,
        })];
        check_trace(&events, &BTreeSet::new()).unwrap();
        let survivors: BTreeSet<u32> = [2].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::UnresolvedYellow {
                node: 2,
                creator: 0,
                action_seq: 7
            }
        ));
    }

    #[test]
    fn lost_green_action_is_caught_at_survivors() {
        // Node 0 greens two positions, crashes, and recovers from a
        // stable store that only knew one of them — and never catches
        // back up. The greened position 1 has been lost at a survivor.
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        events.extend(green_mark(0, 0, 2, 2));
        events.push(rec(E::EngineCrashed { node: 0 }));
        events.push(rec(E::EngineRecovered { node: 0, green: 1 }));

        // A non-survivor ending short is legal (it may still be down).
        check_trace(&events, &BTreeSet::new()).unwrap();

        let survivors: BTreeSet<u32> = [0].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::GreenActionLost {
                node: 0,
                final_green: 1,
                needed: 2,
            }
        ));

        // Catching back up to the claimed prefix clears the violation.
        events.extend(green_mark(0, 0, 2, 2));
        check_trace(&events, &survivors).unwrap();
    }

    #[test]
    fn survivor_that_never_greened_loses_every_claimed_position() {
        let mut events = Vec::new();
        events.extend(green_mark(0, 0, 1, 1));
        let survivors: BTreeSet<u32> = [3].into_iter().collect();
        assert!(matches!(
            check_trace(&events, &survivors).unwrap_err(),
            TraceViolation::GreenActionLost {
                node: 3,
                final_green: 0,
                needed: 1,
            }
        ));
    }

    #[test]
    fn delivery_sender_mismatch_is_caught() {
        let d = |node, sender| {
            rec(E::Delivered {
                node,
                conf_seq: 3,
                coordinator: 0,
                seq: 10,
                sender,
                in_transitional: false,
            })
        };
        check_trace(&[d(0, 4), d(1, 4)], &BTreeSet::new()).unwrap();
        assert!(matches!(
            check_trace(&[d(0, 4), d(1, 2)], &BTreeSet::new()).unwrap_err(),
            TraceViolation::DeliveryMismatch { seq: 10, .. }
        ));
    }

    #[test]
    fn delivery_slots_strictly_increase_per_node_and_conf() {
        let d = |seq| {
            rec(E::Delivered {
                node: 0,
                conf_seq: 3,
                coordinator: 0,
                seq,
                sender: 1,
                in_transitional: false,
            })
        };
        check_trace(&[d(1), d(2), d(5)], &BTreeSet::new()).unwrap();
        assert!(matches!(
            check_trace(&[d(2), d(2)], &BTreeSet::new()).unwrap_err(),
            TraceViolation::DeliverySeqRegression { .. }
        ));
    }
}
