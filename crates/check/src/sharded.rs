//! Sharded-cluster checking: the Explorer's run protocol and oracles
//! lifted to `S` replication groups behind a
//! [`ShardRouter`](todr_shard::ShardRouter).
//!
//! Per group, nothing new is needed — Theorem 1 holds independently in
//! every group, so [`run_shard_case`] re-runs the existing state
//! invariants ([`todr_harness::checkers`], via
//! [`ShardedCluster::try_check_consistency`]) and the whole-history
//! trace oracle ([`crate::oracle::check_trace`]) once per group, on the
//! group's own slice of the typed event log (filtered by the
//! [`RecordedEvent::group`] metric scope: node ids restart at 0 in
//! every group, so the merged log would alias replicas across groups).
//!
//! What *is* new is the cross-shard serializability oracle,
//! [`check_shard_trace`]: a pure function over the router's
//! `CrossShard*` protocol events that checks, for the whole history,
//!
//! * **atomicity** — a transaction only ever touches the groups it
//!   declared, and is reported applied exactly when every participant
//!   committed it;
//! * **prepare/commit phasing** — in each group the commit lands
//!   strictly after the prepare marker in that group's green order;
//! * **deterministic merge** — the fixed cross-group timestamp is the
//!   max of the prepared green positions, as specified;
//! * **commit-order consistency** — any two transactions sharing two
//!   groups commit in the same relative order in both. This is the
//!   pairwise core of cross-shard serializability, and precisely the
//!   property the router's per-shard FIFO commit barrier exists to
//!   enforce — the `SkipCommitBarrier` chaos mutation breaks exactly
//!   this, and the mutation self-test proves this oracle catches it.
//!
//! [`explore_sharded`] sweeps `(seed, perturbation)` pairs exactly like
//! [`crate::explore`], drawing each fault schedule from the same
//! nemesis distribution (steps name replicas by *flat* index, mapped
//! onto `(group, replica)`; join/leave/storage steps degrade to quiet
//! ones, since the sharded harness scripts partitions and crashes
//! only), and [`ddmin`]s every failing schedule to 1-minimal form.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};
use todr_core::EngineState;
use todr_harness::sharded::{ShardClientConfig, ShardedCluster, ShardedConfig};
use todr_sim::{ProtocolEvent, RecordedEvent, SimDuration, SimRng};

use crate::oracle;
use crate::runner::{tie_break_for, CaseFailure, CaseSpec, FailureKind, EVENT_TAIL};
use crate::schedule::{generate_schedule_with, Step};
use crate::shrink::ddmin;

// ------------------------------------------------------------
// The cross-shard trace oracle
// ------------------------------------------------------------

/// A violation of the cross-shard transaction protocol, found by
/// replaying the router's `CrossShard*` event history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardTraceViolation {
    /// A prepare/merge/commit/apply event named a transaction that was
    /// never started.
    EventWithoutStart {
        /// The phantom transaction id.
        txn: u64,
    },
    /// A transaction prepared or committed in a group outside its
    /// declared participant set, or was reported applied with a
    /// participant's commit missing.
    AtomicityViolation {
        /// The offending transaction.
        txn: u64,
        /// The group where the event is missing or misplaced.
        group: u32,
    },
    /// A commit was ordered at or before its own prepare marker in the
    /// same group's green order.
    PrepareCommitInversion {
        /// The offending transaction.
        txn: u64,
        /// The group whose green order shows the inversion.
        group: u32,
        /// The prepare marker's green position.
        prepared: u64,
        /// The commit's green position.
        committed: u64,
    },
    /// The merged timestamp differs from the deterministic max of the
    /// prepared green positions.
    MergeMismatch {
        /// The offending transaction.
        txn: u64,
        /// The timestamp the router announced.
        ts: u64,
        /// The max of the prepared positions it should have announced.
        max_prepared: u64,
    },
    /// Two transactions sharing two groups committed in opposite
    /// relative orders — the pairwise serializability violation the
    /// commit barrier prevents.
    CommitOrderConflict {
        /// Transaction committed first in `group_a` but second in
        /// `group_b`.
        txn_a: u64,
        /// Transaction committed second in `group_a` but first in
        /// `group_b`.
        txn_b: u64,
        /// One shared group.
        group_a: u32,
        /// The other shared group, disagreeing on the order.
        group_b: u32,
    },
    /// A transaction started but never applied, in a history that
    /// claims the router drained.
    UnfinishedTxn {
        /// The stuck transaction.
        txn: u64,
    },
}

impl std::fmt::Display for ShardTraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardTraceViolation::EventWithoutStart { txn } => {
                write!(f, "cross-shard event for txn {txn} that was never started")
            }
            ShardTraceViolation::AtomicityViolation { txn, group } => write!(
                f,
                "txn {txn} violated atomicity in group {group} (event outside the \
                 participant set, or applied with that participant's commit missing)"
            ),
            ShardTraceViolation::PrepareCommitInversion {
                txn,
                group,
                prepared,
                committed,
            } => write!(
                f,
                "txn {txn} committed at green position {committed} in group {group}, \
                 not after its prepare marker at {prepared}"
            ),
            ShardTraceViolation::MergeMismatch {
                txn,
                ts,
                max_prepared,
            } => write!(
                f,
                "txn {txn} merged to timestamp {ts}, but the max prepared green \
                 position is {max_prepared}"
            ),
            ShardTraceViolation::CommitOrderConflict {
                txn_a,
                txn_b,
                group_a,
                group_b,
            } => write!(
                f,
                "txns {txn_a} and {txn_b} committed in opposite orders: \
                 {txn_a} first in group {group_a}, {txn_b} first in group {group_b}"
            ),
            ShardTraceViolation::UnfinishedTxn { txn } => {
                write!(
                    f,
                    "txn {txn} started but never applied in a drained history"
                )
            }
        }
    }
}

/// What a clean cross-shard history established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTraceStats {
    /// `CrossShard*` events replayed.
    pub events: u64,
    /// Transactions started.
    pub txns_started: u64,
    /// Transactions fully applied.
    pub txns_applied: u64,
    /// Adjacent commit-order comparisons performed across all group
    /// pairs (strict monotonicity of adjacent pairs implies it for all
    /// pairs, transitively).
    pub commit_pairs_checked: u64,
}

#[derive(Default)]
struct TxnTrace {
    participants: u64,
    prepared: BTreeMap<u32, u64>,
    ts: Option<u64>,
    /// group → (green position, submission attempt).
    committed: BTreeMap<u32, (u64, u32)>,
    applied: bool,
}

impl TxnTrace {
    fn participates(&self, group: u32) -> bool {
        group < 64 && self.participants & (1u64 << group) != 0
    }
}

/// Replays the `CrossShard*` slice of a finished run's event log and
/// checks atomicity, prepare/commit phasing, deterministic merge and
/// pairwise commit-order consistency over the whole history (see the
/// module docs). Pure: no world access, deterministic for a fixed log.
///
/// With `require_applied`, every started transaction must also have
/// been applied — pass `true` after a successful router drain, `false`
/// for histories cut mid-flight.
///
/// # Errors
///
/// Returns the first [`ShardTraceViolation`] encountered.
pub fn check_shard_trace(
    events: &[RecordedEvent],
    require_applied: bool,
) -> Result<ShardTraceStats, ShardTraceViolation> {
    let mut txns: BTreeMap<u64, TxnTrace> = BTreeMap::new();
    let mut stats = ShardTraceStats {
        events: 0,
        txns_started: 0,
        txns_applied: 0,
        commit_pairs_checked: 0,
    };
    for rec in events {
        match rec.event {
            ProtocolEvent::CrossShardStart { txn, participants } => {
                stats.events += 1;
                stats.txns_started += 1;
                txns.entry(txn).or_default().participants = participants;
            }
            ProtocolEvent::CrossShardPrepared {
                txn,
                group,
                green_seq,
            } => {
                stats.events += 1;
                let t = txns
                    .get_mut(&txn)
                    .ok_or(ShardTraceViolation::EventWithoutStart { txn })?;
                if !t.participates(group) {
                    return Err(ShardTraceViolation::AtomicityViolation { txn, group });
                }
                t.prepared.insert(group, green_seq);
            }
            ProtocolEvent::CrossShardMerged { txn, ts } => {
                stats.events += 1;
                let t = txns
                    .get_mut(&txn)
                    .ok_or(ShardTraceViolation::EventWithoutStart { txn })?;
                let max_prepared = t.prepared.values().copied().max().unwrap_or(0);
                if ts != max_prepared {
                    return Err(ShardTraceViolation::MergeMismatch {
                        txn,
                        ts,
                        max_prepared,
                    });
                }
                t.ts = Some(ts);
            }
            ProtocolEvent::CrossShardCommitted {
                txn,
                group,
                green_seq,
                attempt,
            } => {
                stats.events += 1;
                let t = txns
                    .get_mut(&txn)
                    .ok_or(ShardTraceViolation::EventWithoutStart { txn })?;
                if !t.participates(group) {
                    return Err(ShardTraceViolation::AtomicityViolation { txn, group });
                }
                if let Some(&prepared) = t.prepared.get(&group) {
                    if green_seq <= prepared {
                        return Err(ShardTraceViolation::PrepareCommitInversion {
                            txn,
                            group,
                            prepared,
                            committed: green_seq,
                        });
                    }
                }
                t.committed.insert(group, (green_seq, attempt));
            }
            ProtocolEvent::CrossShardApplied { txn } => {
                stats.events += 1;
                let t = txns
                    .get_mut(&txn)
                    .ok_or(ShardTraceViolation::EventWithoutStart { txn })?;
                for g in 0..64u32 {
                    if t.participates(g) && !t.committed.contains_key(&g) {
                        return Err(ShardTraceViolation::AtomicityViolation { txn, group: g });
                    }
                }
                t.applied = true;
                stats.txns_applied += 1;
            }
            _ => {}
        }
    }
    if require_applied {
        for (&txn, t) in &txns {
            if !t.applied {
                return Err(ShardTraceViolation::UnfinishedTxn { txn });
            }
        }
    }

    // Pairwise commit-order consistency: for every pair of groups, the
    // transactions committed in both must commit in the same relative
    // order in each. A retried commit can be recorded at a later
    // position than the one where its writes actually applied, so only
    // first-attempt positions are trusted for ordering (retries are
    // rare — a zero-retry history checks every pair).
    let mut groups_seen: BTreeSet<u32> = BTreeSet::new();
    for t in txns.values() {
        groups_seen.extend(t.committed.keys().copied());
    }
    let groups: Vec<u32> = groups_seen.into_iter().collect();
    for (i, &ga) in groups.iter().enumerate() {
        for &gb in &groups[i + 1..] {
            let mut shared: Vec<(u64, u64, u64)> = txns
                .iter()
                .filter_map(|(&txn, t)| {
                    let &(pa, aa) = t.committed.get(&ga)?;
                    let &(pb, ab) = t.committed.get(&gb)?;
                    (aa == 1 && ab == 1).then_some((pa, pb, txn))
                })
                .collect();
            shared.sort_unstable();
            for w in shared.windows(2) {
                let (_, pb_prev, txn_prev) = w[0];
                let (_, pb_next, txn_next) = w[1];
                stats.commit_pairs_checked += 1;
                if pb_next <= pb_prev {
                    return Err(ShardTraceViolation::CommitOrderConflict {
                        txn_a: txn_prev,
                        txn_b: txn_next,
                        group_a: ga,
                        group_b: gb,
                    });
                }
            }
        }
    }
    Ok(stats)
}

// ------------------------------------------------------------
// The sharded case runner
// ------------------------------------------------------------

/// Knobs shared by every case of a sharded exploration.
#[derive(Debug, Clone)]
pub struct ShardRunOptions {
    /// Number of replication groups.
    pub shards: u32,
    /// Replicas in every group.
    pub replicas_per_shard: u32,
    /// EVS message-packing level (per group).
    pub max_pack: usize,
    /// Engine auto-checkpoint period in green actions.
    pub checkpoint_interval: u64,
    /// Cross-shard fraction of each client's requests, in permille —
    /// high by default so short schedules exercise the cross-shard
    /// protocol densely.
    pub cross_permille: u32,
    /// Run every group with the commutativity fast path on and submit
    /// single-shard updates with `Fast` policy: the per-group fast
    /// oracles ([`crate::oracle::check_trace`]'s `FastCommit*` clauses)
    /// and the cross-shard serializability oracle must both hold.
    pub fast_path: bool,
    /// The deliberate router invariant breakage to inject
    /// (`chaos-mutations` builds only; used by the mutation self-test).
    #[cfg(feature = "chaos-mutations")]
    pub shard_chaos: Option<todr_shard::ShardChaos>,
}

impl Default for ShardRunOptions {
    fn default() -> Self {
        ShardRunOptions {
            shards: 2,
            replicas_per_shard: 3,
            max_pack: 1,
            checkpoint_interval: 1024,
            cross_permille: 300,
            fast_path: false,
            #[cfg(feature = "chaos-mutations")]
            shard_chaos: None,
        }
    }
}

impl ShardRunOptions {
    /// Total replicas across all groups (the flat index space fault
    /// schedules are drawn over).
    pub fn total_replicas(&self) -> usize {
        (self.shards * self.replicas_per_shard) as usize
    }
}

/// What a passing sharded case established. Byte-identical across runs
/// of the same `(spec, options)` — the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCasePass {
    /// Converged green count of every group, indexed by shard id.
    pub green_counts: Vec<u64>,
    /// Converged database digest of every group, indexed by shard id.
    pub db_digests: Vec<u64>,
    /// Cross-shard transactions fully applied.
    pub cross_txns: u64,
    /// Green positions the per-group trace oracles cross-checked.
    pub green_positions_agreed: u64,
    /// Commit-order comparisons the cross-shard oracle performed.
    pub commit_pairs_checked: u64,
    /// Compact deterministic JSON of the world's metrics export.
    pub metrics_json: String,
}

fn fail(cluster: &ShardedCluster, kind: FailureKind, message: String) -> Box<CaseFailure> {
    let events = cluster.world.metrics().events();
    let tail_from = events.len().saturating_sub(EVENT_TAIL);
    Box::new(CaseFailure {
        kind,
        message,
        event_tail: events[tail_from..].to_vec(),
        metrics: Some(cluster.metrics_export()),
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one sharded case to completion: settle, one closed-loop shard
/// client per replica, one [`Step`] per 400 ms (flat replica indices
/// mapped onto `(group, replica)`; see the module docs for the step
/// semantics), heal, drain the router, then per-group convergence, the
/// per-group trace oracle, and the cross-shard serializability oracle.
///
/// Deterministic: the same `(spec, options)` always produces the same
/// result, byte for byte.
///
/// # Errors
///
/// Returns a [`CaseFailure`] classifying the first property violation,
/// including protocol-internal panics.
pub fn run_shard_case(
    spec: &CaseSpec,
    options: &ShardRunOptions,
) -> Result<ShardCasePass, Box<CaseFailure>> {
    match catch_unwind(AssertUnwindSafe(|| run_shard_case_inner(spec, options))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(Box::new(CaseFailure {
            kind: FailureKind::Panic,
            message: panic_message(payload),
            event_tail: Vec::new(),
            metrics: None,
        })),
    }
}

fn run_shard_case_inner(
    spec: &CaseSpec,
    options: &ShardRunOptions,
) -> Result<ShardCasePass, Box<CaseFailure>> {
    let per_group = options.replicas_per_shard as usize;
    let total = options.total_replicas();
    let n_groups = options.shards as usize;
    let locate = |flat: usize| (flat / per_group, flat % per_group);

    let builder = ShardedConfig::builder(options.shards, options.replicas_per_shard, spec.seed)
        .tie_break(tie_break_for(spec.perturbation))
        .packing(options.max_pack)
        .fast_path(options.fast_path)
        .checkpoint_interval(options.checkpoint_interval);
    #[cfg(feature = "chaos-mutations")]
    let builder = builder.shard_chaos(options.shard_chaos);
    let config = builder.build().expect("sharded runner config is coherent");
    let mut cluster = ShardedCluster::build(config);
    if let Err(e) = cluster.try_settle() {
        return Err(fail(&cluster, FailureKind::Settle, e.to_string()));
    }
    let client_config = ShardClientConfig {
        cross_permille: options.cross_permille,
        fast_single: options.fast_path,
        ..ShardClientConfig::default()
    };
    for _ in 0..total {
        cluster.attach_client(client_config.clone());
    }
    cluster.run_for(SimDuration::from_millis(400));

    // Legality guards, re-applied here (not trusted from the generator)
    // so arbitrary subsequences and deserialized schedules stay valid.
    let mut crashed = vec![false; total];

    for step in &spec.schedule {
        match *step {
            Step::Split { cut } => {
                // One flat cut, applied to every group it crosses:
                // groups entirely on one side stay whole, the group the
                // cut lands in splits. Other groups' fabrics are
                // independent, so this exercises partial-deployment
                // partitions.
                let cut = cut.clamp(1, total.saturating_sub(1));
                for g in 0..n_groups {
                    let (a, b): (Vec<usize>, Vec<usize>) =
                        (0..per_group).partition(|&i| g * per_group + i < cut);
                    let sets: Vec<Vec<usize>> =
                        [a, b].into_iter().filter(|s| !s.is_empty()).collect();
                    cluster.partition(g, &sets);
                }
            }
            Step::Merge => {
                for g in 0..n_groups {
                    cluster.merge_all(g);
                }
            }
            Step::Crash { server } | Step::CrashTorn { server } => {
                // The sharded harness crashes torn or clean per the base
                // config, exactly like `Cluster::crash`.
                if server < total && !crashed[server] {
                    crashed[server] = true;
                    let (g, i) = locate(server);
                    cluster.crash(g, i);
                }
            }
            Step::Recover { server } => {
                if server < total && crashed[server] {
                    crashed[server] = false;
                    let (g, i) = locate(server);
                    cluster.recover(g, i);
                }
            }
            // Online joins, permanent leaves and media faults are not
            // scripted on the sharded harness — those flows are
            // per-group identical to the plain cluster and covered by
            // the unsharded sweeps. Degrading (rather than rejecting)
            // keeps every subsequence of a generated schedule legal,
            // which ddmin soundness requires.
            Step::Join { .. } | Step::Leave { .. } | Step::CorruptSector { .. } => {}
            Step::Quiet => {}
        }
        cluster.run_for(SimDuration::from_millis(400));
        if let Err(v) = cluster.try_check_consistency() {
            return Err(Box::new(CaseFailure {
                kind: FailureKind::Consistency,
                message: v.error.to_string(),
                event_tail: v.recent_events,
                metrics: Some(cluster.metrics_export()),
            }));
        }
    }

    // Heal: reconnect and recover everyone, drain the clients and then
    // the router's in-flight cross-shard transactions.
    for g in 0..n_groups {
        cluster.merge_all(g);
    }
    for (flat, was_crashed) in crashed.iter().enumerate() {
        if *was_crashed {
            let (g, i) = locate(flat);
            cluster.recover(g, i);
        }
    }
    cluster.run_for(SimDuration::from_secs(6));
    cluster.stop_clients();
    cluster.run_for(SimDuration::from_secs(4));
    if !cluster.run_to_router_quiescence(SimDuration::from_secs(30)) {
        let pending = cluster.router_pending();
        return Err(fail(
            &cluster,
            FailureKind::Convergence,
            format!("router failed to drain after heal: {pending} cross-shard txns stuck"),
        ));
    }
    if let Err(v) = cluster.try_check_consistency() {
        return Err(Box::new(CaseFailure {
            kind: FailureKind::Consistency,
            message: v.error.to_string(),
            event_tail: v.recent_events,
            metrics: Some(cluster.metrics_export()),
        }));
    }

    // Per-group convergence and per-group whole-history oracles.
    let all_events = cluster.world.metrics().events().to_vec();
    let mut green_counts = Vec::with_capacity(n_groups);
    let mut db_digests = Vec::with_capacity(n_groups);
    let mut green_positions_agreed = 0u64;
    for g in 0..n_groups {
        let views = cluster.group_views(g);
        let survivors: Vec<_> = views
            .iter()
            .filter(|v| v.state != EngineState::Down)
            .collect();
        if survivors.len() < 2 {
            return Err(fail(
                &cluster,
                FailureKind::Convergence,
                format!("group {g}: only {} survivors after heal", survivors.len()),
            ));
        }
        let g0 = survivors[0].green_count;
        let d0 = survivors[0].db_digest;
        for v in &survivors {
            if v.state != EngineState::RegPrim {
                return Err(fail(
                    &cluster,
                    FailureKind::Convergence,
                    format!(
                        "group {g} replica {} in state {:?} after heal, not RegPrim",
                        v.node.index(),
                        v.state
                    ),
                ));
            }
            if v.green_count != g0 {
                return Err(fail(
                    &cluster,
                    FailureKind::Convergence,
                    format!(
                        "group {g} replica {} green count {} != {g0}",
                        v.node.index(),
                        v.green_count
                    ),
                ));
            }
            if v.db_digest != d0 {
                return Err(fail(
                    &cluster,
                    FailureKind::Convergence,
                    format!(
                        "group {g} replica {} database digest diverged",
                        v.node.index()
                    ),
                ));
            }
        }
        let scope = cluster.groups[g].scope;
        let group_events: Vec<RecordedEvent> = all_events
            .iter()
            .filter(|rec| rec.group == scope)
            .cloned()
            .collect();
        let survivor_nodes: BTreeSet<u32> = survivors.iter().map(|v| v.node.index()).collect();
        match oracle::check_trace(&group_events, &survivor_nodes) {
            Ok(stats) => green_positions_agreed += stats.green_positions_agreed,
            Err(v) => {
                return Err(fail(
                    &cluster,
                    FailureKind::TraceOracle,
                    format!("group {g}: {v}"),
                ));
            }
        }
        green_counts.push(g0);
        db_digests.push(d0);
    }

    // The cross-shard serializability oracle, over the merged history
    // (the router's events carry scope 0; the oracle only reads the
    // `CrossShard*` kinds). The router drained, so every started
    // transaction must have applied.
    let shard_stats = match check_shard_trace(&all_events, true) {
        Ok(stats) => stats,
        Err(v) => {
            return Err(fail(&cluster, FailureKind::TraceOracle, v.to_string()));
        }
    };

    Ok(ShardCasePass {
        green_counts,
        db_digests,
        cross_txns: shard_stats.txns_applied,
        green_positions_agreed,
        commit_pairs_checked: shard_stats.commit_pairs_checked,
        metrics_json: cluster.metrics_export().to_json(),
    })
}

/// Shrinks a failing sharded case's schedule to a 1-minimal failing
/// schedule, keeping the seed and perturbation fixed (the sharded
/// counterpart of [`crate::shrink_case`]; sound for the same reason —
/// the runner re-applies every legality guard, so any subsequence of a
/// valid schedule is valid).
pub fn shrink_shard_case(spec: &CaseSpec, options: &ShardRunOptions) -> CaseSpec {
    let schedule: Vec<Step> = ddmin(&spec.schedule, |candidate| {
        let candidate_spec = CaseSpec {
            seed: spec.seed,
            perturbation: spec.perturbation,
            schedule: candidate.to_vec(),
        };
        run_shard_case(&candidate_spec, options).is_err()
    });
    CaseSpec {
        seed: spec.seed,
        perturbation: spec.perturbation,
        schedule,
    }
}

// ------------------------------------------------------------
// The sharded explorer
// ------------------------------------------------------------

/// Parameters of one sharded exploration sweep.
#[derive(Debug, Clone)]
pub struct ShardExploreConfig {
    /// First explorer seed (each derives one world seed + schedule).
    pub seed_start: u64,
    /// Number of consecutive explorer seeds to sweep.
    pub seed_count: u64,
    /// Perturbation indices `0..perturbations` to run each schedule
    /// under (clamped to at least 1, i.e. the FIFO baseline).
    pub perturbations: u64,
    /// Whether to delta-debug failing schedules to 1-minimal form.
    pub shrink: bool,
    /// Per-case runner knobs (shard count, cross-shard fraction,
    /// injected router chaos).
    pub options: ShardRunOptions,
}

impl Default for ShardExploreConfig {
    fn default() -> Self {
        ShardExploreConfig {
            seed_start: 0,
            seed_count: 4,
            perturbations: 2,
            shrink: true,
            options: ShardRunOptions::default(),
        }
    }
}

/// A replayable sharded counterexample: the spec plus its failure
/// classification ([`artifact::Counterexample`](crate::Counterexample)
/// is typed to the unsharded [`crate::RunOptions`], so sharded findings
/// get their own, structurally identical artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardCounterexample {
    /// The explorer seed that drew this schedule.
    pub explorer_seed: u64,
    /// The world seed.
    pub world_seed: u64,
    /// The tie-break perturbation index.
    pub perturbation: u64,
    /// The (shrunk) fault schedule.
    pub schedule: Vec<Step>,
    /// What class of property broke.
    pub kind: FailureKind,
    /// Human-readable description of the violation.
    pub message: String,
}

impl ShardCounterexample {
    /// Reconstructs the case spec this artifact pins down.
    pub fn spec(&self) -> CaseSpec {
        CaseSpec {
            seed: self.world_seed,
            perturbation: self.perturbation,
            schedule: self.schedule.clone(),
        }
    }

    /// Re-runs the counterexample under the given options.
    ///
    /// # Errors
    ///
    /// Fails (again) with the reproduced [`CaseFailure`] — a genuine
    /// counterexample replayed under its original options never passes.
    pub fn replay(&self, options: &ShardRunOptions) -> Result<ShardCasePass, Box<CaseFailure>> {
        run_shard_case(&self.spec(), options)
    }
}

/// The outcome of a sharded exploration sweep.
#[derive(Debug, Clone)]
pub struct ShardExploreReport {
    /// Total `(seed, perturbation)` cases run.
    pub cases_run: u64,
    /// Cases that passed every oracle.
    pub passed: u64,
    /// One (shrunk) replayable artifact per failing case.
    pub failures: Vec<ShardCounterexample>,
}

impl ShardExploreReport {
    /// True when every case passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a sharded sweep, mirroring [`crate::explore`]: one fault
/// schedule per explorer seed (drawn over the flat replica index
/// space), run under each requested tie-break perturbation, with every
/// failing case [`ddmin`]ed to 1-minimal form. Deterministic: identical
/// configs produce identical reports.
///
/// `progress` is called once per finished case with
/// `(explorer_seed, perturbation, passed)`.
pub fn explore_sharded(
    config: &ShardExploreConfig,
    mut progress: impl FnMut(u64, u64, bool),
) -> ShardExploreReport {
    let mut cases_run = 0u64;
    let mut passed = 0u64;
    let mut failures = Vec::new();
    for explorer_seed in config.seed_start..config.seed_start.saturating_add(config.seed_count) {
        let mut rng = SimRng::new(explorer_seed);
        let world_seed = rng.gen_range(1_000_000);
        let schedule = generate_schedule_with(&mut rng, config.options.total_replicas(), false);
        for perturbation in 0..config.perturbations.max(1) {
            let spec = CaseSpec {
                seed: world_seed,
                perturbation,
                schedule: schedule.clone(),
            };
            cases_run += 1;
            match run_shard_case(&spec, &config.options) {
                Ok(_) => {
                    passed += 1;
                    progress(explorer_seed, perturbation, true);
                }
                Err(failure) => {
                    progress(explorer_seed, perturbation, false);
                    let (min_spec, min_failure) = if config.shrink {
                        let shrunk = shrink_shard_case(&spec, &config.options);
                        match run_shard_case(&shrunk, &config.options) {
                            Err(f) => (shrunk, f),
                            // Unreachable for a deterministic runner,
                            // but never discard a real finding over it.
                            Ok(_) => (spec.clone(), failure),
                        }
                    } else {
                        (spec.clone(), failure)
                    };
                    failures.push(ShardCounterexample {
                        explorer_seed,
                        world_seed: min_spec.seed,
                        perturbation: min_spec.perturbation,
                        schedule: min_spec.schedule,
                        kind: min_failure.kind,
                        message: min_failure.message,
                    });
                }
            }
        }
    }
    ShardExploreReport {
        cases_run,
        passed,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: ProtocolEvent) -> RecordedEvent {
        RecordedEvent {
            at_nanos: 0,
            actor: 0,
            group: 0,
            event,
        }
    }

    fn start(txn: u64, participants: u64) -> RecordedEvent {
        rec(ProtocolEvent::CrossShardStart { txn, participants })
    }

    fn prepared(txn: u64, group: u32, green_seq: u64) -> RecordedEvent {
        rec(ProtocolEvent::CrossShardPrepared {
            txn,
            group,
            green_seq,
        })
    }

    fn merged(txn: u64, ts: u64) -> RecordedEvent {
        rec(ProtocolEvent::CrossShardMerged { txn, ts })
    }

    fn committed(txn: u64, group: u32, green_seq: u64) -> RecordedEvent {
        rec(ProtocolEvent::CrossShardCommitted {
            txn,
            group,
            green_seq,
            attempt: 1,
        })
    }

    fn applied(txn: u64) -> RecordedEvent {
        rec(ProtocolEvent::CrossShardApplied { txn })
    }

    /// A full, clean two-transaction history over groups {0, 1}.
    fn clean_history() -> Vec<RecordedEvent> {
        vec![
            start(1, 0b11),
            prepared(1, 0, 5),
            prepared(1, 1, 3),
            merged(1, 5),
            committed(1, 0, 6),
            committed(1, 1, 4),
            applied(1),
            start(2, 0b11),
            prepared(2, 0, 7),
            prepared(2, 1, 5),
            merged(2, 7),
            committed(2, 0, 8),
            committed(2, 1, 6),
            applied(2),
        ]
    }

    #[test]
    fn clean_history_passes() {
        let stats = check_shard_trace(&clean_history(), true).expect("clean history");
        assert_eq!(stats.txns_started, 2);
        assert_eq!(stats.txns_applied, 2);
        assert_eq!(stats.commit_pairs_checked, 1);
    }

    #[test]
    fn opposite_commit_orders_are_a_conflict() {
        // txn 1 before txn 2 in group 0, but after it in group 1.
        let history = vec![
            start(1, 0b11),
            prepared(1, 0, 5),
            prepared(1, 1, 9),
            merged(1, 9),
            committed(1, 0, 6),
            committed(1, 1, 11),
            applied(1),
            start(2, 0b11),
            prepared(2, 0, 7),
            prepared(2, 1, 3),
            merged(2, 7),
            committed(2, 0, 8),
            committed(2, 1, 10),
            applied(2),
        ];
        let err = check_shard_trace(&history, true).expect_err("conflicting orders");
        assert_eq!(
            err,
            ShardTraceViolation::CommitOrderConflict {
                txn_a: 1,
                txn_b: 2,
                group_a: 0,
                group_b: 1,
            }
        );
    }

    #[test]
    fn retried_commit_positions_are_not_trusted_for_ordering() {
        // The same opposite orders the conflict test flags, but txn 2's
        // group-1 commit came from a retry — its recorded position is
        // not where the writes applied, so the pair is (correctly) not
        // compared.
        let history = vec![
            start(1, 0b11),
            prepared(1, 0, 5),
            prepared(1, 1, 9),
            merged(1, 9),
            committed(1, 0, 6),
            committed(1, 1, 11),
            applied(1),
            start(2, 0b11),
            prepared(2, 0, 7),
            prepared(2, 1, 3),
            merged(2, 7),
            committed(2, 0, 8),
            rec(ProtocolEvent::CrossShardCommitted {
                txn: 2,
                group: 1,
                green_seq: 10,
                attempt: 2,
            }),
            applied(2),
        ];
        let stats = check_shard_trace(&history, true).expect("retry positions ignored");
        assert_eq!(stats.commit_pairs_checked, 0);
    }

    #[test]
    fn commit_outside_participants_is_atomicity_violation() {
        let history = vec![
            start(1, 0b01),
            prepared(1, 0, 5),
            merged(1, 5),
            committed(1, 1, 6),
        ];
        let err = check_shard_trace(&history, false).expect_err("non-participant commit");
        assert_eq!(
            err,
            ShardTraceViolation::AtomicityViolation { txn: 1, group: 1 }
        );
    }

    #[test]
    fn applied_without_all_commits_is_atomicity_violation() {
        let history = vec![
            start(1, 0b11),
            prepared(1, 0, 5),
            prepared(1, 1, 3),
            merged(1, 5),
            committed(1, 0, 6),
            applied(1),
        ];
        let err = check_shard_trace(&history, false).expect_err("premature apply");
        assert_eq!(
            err,
            ShardTraceViolation::AtomicityViolation { txn: 1, group: 1 }
        );
    }

    #[test]
    fn commit_at_or_before_prepare_is_an_inversion() {
        let history = vec![
            start(1, 0b01),
            prepared(1, 0, 5),
            merged(1, 5),
            committed(1, 0, 5),
        ];
        let err = check_shard_trace(&history, false).expect_err("inverted phases");
        assert_eq!(
            err,
            ShardTraceViolation::PrepareCommitInversion {
                txn: 1,
                group: 0,
                prepared: 5,
                committed: 5,
            }
        );
    }

    #[test]
    fn wrong_merge_timestamp_is_a_mismatch() {
        let history = vec![
            start(1, 0b11),
            prepared(1, 0, 5),
            prepared(1, 1, 9),
            merged(1, 5),
        ];
        let err = check_shard_trace(&history, false).expect_err("bad merge");
        assert_eq!(
            err,
            ShardTraceViolation::MergeMismatch {
                txn: 1,
                ts: 5,
                max_prepared: 9,
            }
        );
    }

    #[test]
    fn unstarted_txn_event_is_flagged() {
        let history = vec![prepared(7, 0, 5)];
        let err = check_shard_trace(&history, false).expect_err("phantom txn");
        assert_eq!(err, ShardTraceViolation::EventWithoutStart { txn: 7 });
    }

    #[test]
    fn unfinished_txn_only_flagged_when_required() {
        let history = vec![start(1, 0b11), prepared(1, 0, 5)];
        assert!(check_shard_trace(&history, false).is_ok());
        let err = check_shard_trace(&history, true).expect_err("stuck txn");
        assert_eq!(err, ShardTraceViolation::UnfinishedTxn { txn: 1 });
    }
}
