//! # todr-check — deterministic schedule exploration, trace checking and
//! counterexample shrinking
//!
//! The checking subsystem of the `todr` stack. Three cooperating parts:
//!
//! * **[`explorer`]** — sweeps `(seed, perturbation)` pairs: each seed
//!   draws one randomized fault schedule (splits, merges, crashes,
//!   recoveries, online joins, permanent leaves), and each perturbation
//!   index selects a distinct same-instant event interleaving via the
//!   simulator's [`TieBreak`](todr_sim::TieBreak) hook — index 0 is the
//!   historical FIFO order, every other index a seeded permutation that
//!   only exercises *legal* asynchronous-system freedoms (per-target
//!   FIFO delivery is preserved).
//! * **[`oracle`]** — replays the typed
//!   [`ProtocolEvent`](todr_sim::ProtocolEvent) log of a finished run
//!   and checks the paper's service properties over the *whole history*:
//!   agreed-order prefix agreement at every green position (Theorem 1),
//!   color monotonicity (§3), strictly-growing green lines, crash/
//!   recovery sanity, safe-delivery ⇒ eventual-green at survivors
//!   (§4.3) and EVS agreed-order delivery agreement. State-at-quiescence
//!   checks (identical committed prefixes, digests, single primary)
//!   reuse [`todr_harness::checkers`] through the [`runner`].
//! * **[`shrink`]** — delta-debugs ([`ddmin`]) a failing
//!   schedule to a 1-minimal counterexample, which [`artifact`] packages
//!   as replayable JSON (seed + schedule + event tail + metrics).
//!
//! The [`sharded`] module lifts all three to sharded deployments
//! ([`todr_harness::sharded`]): the per-group oracles re-run unchanged
//! on each group's slice of the event log, and a cross-shard
//! serializability oracle ([`check_shard_trace`]) checks atomicity,
//! prepare/commit phasing, deterministic timestamp merge and pairwise
//! commit-order consistency of the router's transaction protocol.
//!
//! Everything is deterministic end to end: the same
//! `(seed, perturbation, schedule)` replays to byte-identical replica
//! digests and metrics exports, so a counterexample found in CI
//! reproduces exactly on a laptop.
//!
//! ```
//! use todr_check::{explore, ExploreConfig};
//!
//! let report = explore(
//!     &ExploreConfig {
//!         seed_start: 0,
//!         seed_count: 1,
//!         perturbations: 1,
//!         ..ExploreConfig::default()
//!     },
//!     |_, _, _| {},
//! );
//! assert_eq!(report.cases_run, 1);
//! assert!(report.all_passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod explorer;
pub mod oracle;
pub mod runner;
pub mod schedule;
pub mod sharded;
pub mod shrink;

pub use artifact::Counterexample;
pub use explorer::{explore, ExploreConfig, ExploreReport};
pub use oracle::{check_trace, TraceStats, TraceViolation};
pub use runner::{
    run_case, tie_break_for, CaseFailure, CasePass, CaseSpec, FailureKind, RunOptions,
};
pub use schedule::{generate_schedule, generate_schedule_with, Step};
pub use sharded::{
    check_shard_trace, explore_sharded, run_shard_case, shrink_shard_case, ShardCasePass,
    ShardCounterexample, ShardExploreConfig, ShardExploreReport, ShardRunOptions, ShardTraceStats,
    ShardTraceViolation,
};
pub use shrink::{ddmin, shrink_case};
