//! Mutation self-test: prove the checking oracles have teeth.
//!
//! The engine is compiled (under the `chaos-mutations` feature only)
//! with a deliberate invariant breakage — `PrematureGreen` marks
//! transitionally-delivered actions green immediately instead of
//! yellow, precisely the unsafe shortcut §3's yellow color exists to
//! prevent. The Explorer must catch it on a small sweep and shrink the
//! counterexample to a handful of steps. If every oracle stayed silent
//! here, the checker would be decorative.
#![cfg(feature = "chaos-mutations")]

use todr_check::{explore, ExploreConfig, RunOptions};
use todr_core::ChaosMutation;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn explorer_catches_premature_green_and_shrinks_it() {
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 4,
        perturbations: 1,
        shrink: true,
        storage_faults: false,
        options: RunOptions {
            chaos: Some(ChaosMutation::PrematureGreen),
            ..RunOptions::default()
        },
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        !report.failures.is_empty(),
        "the mutated engine passed every oracle — the checker is blind"
    );
    for ce in &report.failures {
        eprintln!(
            "counterexample: seed {} pert {} kind {} schedule {:?}",
            ce.world_seed, ce.perturbation, ce.kind, ce.schedule
        );
    }
    // Delta debugging must reduce at least one finding to a short,
    // human-readable schedule.
    let min_len = report
        .failures
        .iter()
        .map(|ce| ce.schedule.len())
        .min()
        .expect("non-empty");
    assert!(
        min_len <= 4,
        "no counterexample shrank below 5 steps (min {min_len})"
    );
    // Counterexamples must be replayable: the artifact alone reproduces
    // the identical failure classification.
    let ce = &report.failures[0];
    let replayed = ce
        .replay(&config.options)
        .expect_err("replaying a counterexample must fail again");
    assert_eq!(replayed.kind, ce.kind);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn explorer_catches_skipped_checksum_verify_and_shrinks_it() {
    // The mutated engine trusts the persisted log blindly on recovery:
    // no checksum/epoch scan, and undecodable entries are silently
    // truncated instead of fail-stopping. Under storage-fault schedules
    // a stale sector then replays as a duplicate (or a torn tail as a
    // silent hole) and the recovered replica rejoins with a wrong green
    // prefix — which the durability / recovery oracles must catch.
    //
    // Auto-checkpointing is disabled so the latent corruption is not
    // compacted away by white-line GC before the crash surfaces it —
    // the same knob a real corruption hunt would turn.
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 12,
        perturbations: 1,
        shrink: true,
        storage_faults: true,
        options: RunOptions {
            chaos: Some(ChaosMutation::SkipChecksumVerify),
            checkpoint_interval: 0,
            ..RunOptions::default()
        },
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        !report.failures.is_empty(),
        "the checksum-blind engine passed every oracle — the durability \
         checking is decorative"
    );
    for ce in &report.failures {
        eprintln!(
            "counterexample: seed {} pert {} kind {} schedule {:?}",
            ce.world_seed, ce.perturbation, ce.kind, ce.schedule
        );
    }
    // ddmin must reduce at least one finding to a minimal fault recipe
    // (essentially: corrupt a sector, crash the server, let it recover).
    let min_len = report
        .failures
        .iter()
        .map(|ce| ce.schedule.len())
        .min()
        .expect("non-empty");
    assert!(
        min_len <= 3,
        "no counterexample shrank below 4 steps (min {min_len})"
    );
    let ce = &report.failures[0];
    let replayed = ce
        .replay(&config.options)
        .expect_err("replaying a counterexample must fail again");
    assert_eq!(replayed.kind, ce.kind);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn fixed_engine_passes_the_same_storage_fault_sweep() {
    // The exact sweep that catches `SkipChecksumVerify`, minus the
    // mutation: the checksummed recovery path must survive it clean.
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 12,
        perturbations: 1,
        shrink: true,
        storage_faults: true,
        options: RunOptions {
            chaos: None,
            checkpoint_interval: 0,
            ..RunOptions::default()
        },
    };
    let report = explore(&config, |_, _, _| {});
    assert!(
        report.all_passed(),
        "fixed engine failed the storage-fault sweep: {}",
        report
            .failures
            .iter()
            .map(|ce| format!("[seed {} kind {}] {}", ce.world_seed, ce.kind, ce.message))
            .collect::<Vec<_>>()
            .join("; ")
    );
}
