//! Fast-path safety under adversarial schedules.
//!
//! The commutativity fast path (DESIGN.md §4e) replies to a client
//! after one forced write and one multicast round — before the action
//! is green. These sweeps drive the whole stack with `Fast`-policy
//! clients hammering a shared hot key through partitions, view
//! changes, crashes and torn writes, and require the fast-commit trace
//! oracles (`FastCommitConflict` / `FastCommitNeverGreen` /
//! `FastCommitRevoked`) to stay silent: every promised commit must
//! survive into the global persistent order, never preceded by an
//! unseen conflicting action.
//!
//! The companion mutation self-test (under `chaos-mutations`) breaks
//! the engine's receipt-time conflict check on purpose and requires
//! the same oracles to catch and shrink the violation — proving the
//! sweep is not vacuous.

use todr_check::{explore, ExploreConfig, RunOptions};

fn fast_options() -> RunOptions {
    RunOptions {
        fast_path: true,
        // A quarter of every client's updates target one shared row:
        // enough contention that schedules exercise genuine demotions,
        // not just clean fast commits.
        conflict_pct: 25,
        ..RunOptions::default()
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn fast_path_survives_partition_schedules() {
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 10,
        perturbations: 2,
        shrink: true,
        storage_faults: false,
        options: fast_options(),
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        report.all_passed(),
        "fast path failed a partition schedule: {}",
        report
            .failures
            .iter()
            .map(|ce| format!("[seed {} kind {}] {}", ce.world_seed, ce.kind, ce.message))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn fast_path_survives_torn_crash_schedules() {
    // Same sweep with storage faults on: torn log tails and stale
    // sectors at crash time. A fast commit is promised durable after
    // the origin's forced write, so a torn recovery must never unwind
    // one.
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 10,
        perturbations: 1,
        shrink: true,
        storage_faults: true,
        options: fast_options(),
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        report.all_passed(),
        "fast path failed a torn-crash schedule: {}",
        report
            .failures
            .iter()
            .map(|ce| format!("[seed {} kind {}] {}", ce.world_seed, ce.kind, ce.message))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Mutation self-test: `SkipConflictCheck` makes the engine promise
/// fast commits regardless of what is in flight. The receipt-time
/// mirror (`FastCommitConflict`) — and, when a reorder actually lands,
/// `FastCommitRevoked` — must catch it, and ddmin must shrink the
/// finding to a short schedule.
#[cfg(feature = "chaos-mutations")]
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn explorer_catches_skipped_conflict_check_and_shrinks_it() {
    use todr_core::ChaosMutation;

    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 8,
        perturbations: 1,
        shrink: true,
        storage_faults: false,
        options: RunOptions {
            chaos: Some(ChaosMutation::SkipConflictCheck),
            ..fast_options()
        },
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        !report.failures.is_empty(),
        "the conflict-blind engine passed every oracle — the fast-path \
         checking is decorative"
    );
    for ce in &report.failures {
        eprintln!(
            "counterexample: seed {} pert {} kind {} schedule {:?}",
            ce.world_seed, ce.perturbation, ce.kind, ce.schedule
        );
    }
    // The violation needs no nemesis at all — two clients racing the
    // hot key suffice — so ddmin must strip the schedule to (nearly)
    // nothing.
    let min_len = report
        .failures
        .iter()
        .map(|ce| ce.schedule.len())
        .min()
        .expect("non-empty");
    assert!(
        min_len <= 2,
        "no counterexample shrank below 3 steps (min {min_len})"
    );
    let ce = &report.failures[0];
    let replayed = ce
        .replay(&config.options)
        .expect_err("replaying a counterexample must fail again");
    assert_eq!(replayed.kind, ce.kind);
}
