//! The todr-check trace oracles — including the `GreenActionLost`
//! durability oracle — run against the real file-backed storage
//! backend, Derecho-style: the checker is unchanged, only the medium
//! under the engine is real.
//!
//! Schedule *exploration* stays sim-only (the builder enforces it —
//! seeded tie-break replay requires byte-identical storage), but a
//! fixed Fifo scenario with real torn writes and real bit rot is
//! exactly what the oracles exist to audit.

use std::collections::BTreeSet;

use todr_check::{check_trace, TraceViolation};
use todr_harness::client::{ClientConfig, ClosedLoopClient};
use todr_harness::cluster::{BackendKind, Cluster, ClusterConfig};
use todr_sim::{ProtocolEvent, SimDuration, TieBreak};

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn ms(m: u64) -> SimDuration {
    SimDuration::from_millis(m)
}

/// Stops all clients and drains, so green lines converge before the
/// whole-history oracles run (same discipline as the check runner).
fn quiesce(cluster: &mut Cluster) {
    for c in cluster.clients().to_vec() {
        cluster
            .world
            .with_actor(c.actor_id(), |cl: &mut ClosedLoopClient| cl.stop());
    }
    cluster.run_for(secs(4));
}

/// Torn crash + recovery on real files, audited by every trace oracle.
/// A green action acknowledged before the crash must never disappear
/// from the recovered replica's state — on pain of `GreenActionLost`.
#[test]
fn durability_oracle_passes_on_file_backend_with_torn_crash() {
    let victim = 4usize;
    let mut torn_seen = false;
    for seed in 0..6u64 {
        let config = ClusterConfig::builder(5, 0xD15C + seed)
            .backend(BackendKind::File)
            .torn_crashes(true)
            .build()
            .expect("coherent config");
        let mut cluster = Cluster::build(config);
        cluster.settle();
        for i in 0..5 {
            cluster.attach_client(i, ClientConfig::default());
        }
        // Enough traffic for green history, then a torn crash mid-burst.
        cluster.run_for(ms(400));
        cluster.crash(victim);
        cluster.run_for(secs(1));
        cluster.recover(victim);
        cluster.run_for(secs(2));
        quiesce(&mut cluster);
        cluster.check_consistency();

        let events = cluster.world.metrics().events();
        torn_seen |= events.iter().any(|e| {
            matches!(
                e.event,
                ProtocolEvent::TornTailTruncated { node, .. } if node == victim as u32
            )
        });
        let survivors: BTreeSet<u32> = (0..5).collect();
        let stats = check_trace(events, &survivors).unwrap_or_else(|v| {
            panic!("seed {seed}: trace oracle violated on file backend: {v:?}")
        });
        assert!(stats.events > 0);
        assert!(
            stats.green_positions_agreed > 0,
            "seed {seed}: oracle cross-checked no green positions"
        );
    }
    assert!(
        torn_seen,
        "no torn tail across the seed sweep — the on-disk fault \
         injection is not biting"
    );
}

/// A latent bit flip on the victim's real log makes it fail-stop at
/// recovery; the oracles must hold for the surviving majority (the
/// fail-stopped replica is excluded from the survivor set, exactly like
/// a fail-stopped replica in the sim corruption sweep).
#[test]
fn oracles_hold_when_file_backend_bit_flip_fail_stops_a_replica() {
    let victim = 4usize;
    let config = ClusterConfig::builder(5, 0xB17D15C)
        .backend(BackendKind::File)
        .build()
        .expect("coherent config");
    let mut cluster = Cluster::build(config);
    cluster.settle();
    for i in 0..5 {
        cluster.attach_client(i, ClientConfig::default());
    }
    cluster.run_for(secs(1));
    cluster.flip_bit(victim);
    cluster.run_for(ms(10));
    cluster.crash(victim);
    cluster.run_for(secs(1));
    cluster.recover(victim);
    cluster.run_for(secs(2));
    quiesce(&mut cluster);

    assert_eq!(
        cluster.engine_state(victim),
        todr_core::EngineState::Down,
        "rotten disk must fail-stop the victim"
    );
    cluster.check_consistency();
    let survivors: BTreeSet<u32> = (0..4).collect();
    let events = cluster.world.metrics().events();
    check_trace(events, &survivors)
        .unwrap_or_else(|v: TraceViolation| panic!("oracle violated: {v:?}"));
}

/// Schedule exploration replays seeded interleavings; only the
/// deterministic sim store guarantees byte-identical fault injection,
/// so the builder rejects the file backend combined with seeded
/// tie-breaking.
#[test]
fn builder_rejects_file_backend_with_seeded_tie_break() {
    let err = ClusterConfig::builder(5, 7)
        .backend(BackendKind::File)
        .tie_break(TieBreak::Seeded(3))
        .build()
        .expect_err("File + Seeded must be rejected");
    assert!(
        err.0.contains("schedule exploration"),
        "rejection must explain the replay constraint: {err}"
    );

    // Each knob alone is fine.
    assert!(ClusterConfig::builder(5, 7)
        .backend(BackendKind::File)
        .build()
        .is_ok());
    assert!(ClusterConfig::builder(5, 7)
        .tie_break(TieBreak::Seeded(3))
        .build()
        .is_ok());
}
