//! Bounded corruption sweep: the fixed engine under storage-fault
//! schedules (torn-write crashes, stale sectors) must pass every oracle
//! — including the durability oracle: no green-ordered action is ever
//! lost across crash, torn tail or a single corrupted sector, and
//! recovered replicas rejoin with a consistent green prefix.
//!
//! The full 200-case sweep is `#[ignore]`d for local runs and executed
//! by the CI `corruption-sweep` job with `--include-ignored`; a smaller
//! release-profile slice runs in the ordinary test suite.

use todr_check::{explore, run_case, CaseSpec, ExploreConfig, RunOptions, Step};

fn sweep(seed_start: u64, seed_count: u64, perturbations: u64) {
    // Auto-checkpointing off: white-line GC would otherwise compact a
    // latent corrupted sector away before any crash surfaces it, and
    // the sweep is here to maximize the window in which faults bite.
    let config = ExploreConfig {
        seed_start,
        seed_count,
        perturbations,
        shrink: true,
        storage_faults: true,
        options: RunOptions {
            checkpoint_interval: 0,
            ..RunOptions::default()
        },
    };
    let report = explore(&config, |seed, pert, passed| {
        if !passed {
            eprintln!("seed {seed} pert {pert}: FAIL");
        }
    });
    assert_eq!(
        report.cases_run,
        seed_count * perturbations.max(1),
        "sweep did not cover the advertised case count"
    );
    assert!(
        report.all_passed(),
        "{} corruption case(s) failed: {}",
        report.failures.len(),
        report
            .failures
            .iter()
            .map(|ce| {
                format!(
                    "[seed {} pert {} kind {}] {} (schedule {:?})",
                    ce.world_seed, ce.perturbation, ce.kind, ce.message, ce.schedule
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// The acceptance-criteria sweep: 100 explorer seeds × 2 perturbations
/// = 200 `(seed, perturbation)` cases over storage-fault schedules.
#[test]
#[ignore = "multi-minute sweep; run in release with --include-ignored (CI corruption-sweep job)"]
fn corruption_sweep_200_cases_finds_no_violations() {
    sweep(0, 100, 2);
}

/// A fast slice of the same sweep for the ordinary release test run.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn corruption_sweep_smoke_slice() {
    sweep(0, 8, 2);
}

/// Determinism under injected faults: a schedule mixing a torn-write
/// crash with a stale sector replays to a byte-identical
/// [`todr_check::CasePass`] — including the serialized metrics export —
/// under both tie-break policies. The faults draw from the world's
/// dedicated fault RNG stream, so the tear offsets and sector choices
/// are part of the reproducible state.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn fault_schedules_replay_byte_identically_under_both_tie_breaks() {
    let schedule = vec![
        Step::CorruptSector { server: 2 },
        Step::CrashTorn { server: 2 },
        Step::Quiet,
        Step::Recover { server: 2 },
    ];
    let options = RunOptions::default();
    for perturbation in [0u64, 1] {
        let spec = CaseSpec {
            seed: 0xD15C,
            perturbation,
            schedule: schedule.clone(),
        };
        let a = run_case(&spec, &options).unwrap_or_else(|f| {
            panic!("fault schedule failed under perturbation {perturbation}: {f}")
        });
        let b = run_case(&spec, &options).expect("second run of an identical spec");
        assert_eq!(a, b, "replay diverged under perturbation {perturbation}");
        assert_eq!(
            a.metrics_json, b.metrics_json,
            "metrics export diverged under perturbation {perturbation}"
        );
    }
}
