//! Read-lease safety under adversarial schedules.
//!
//! Primary read leases (DESIGN.md §4f) answer linearizable reads
//! locally, without a forced write or a multicast round. These sweeps
//! run every replica with a read-only linearizable client and a writer
//! over a shared Zipfian key space, drive the cluster through
//! partitions, view changes, crashes and torn writes, and require the
//! read-lease trace oracles to stay silent: no lease-served read may
//! miss a previously acknowledged write (`StaleLinearizableRead`), and
//! no two leases sealed to different configurations may ever be live at
//! once (`LeaseOverlap`).
//!
//! The companion mutation self-test (under `chaos-mutations`) makes the
//! engine answer linearizable reads without holding a lease at all and
//! requires the same oracles to catch and shrink the violation —
//! proving the sweep is not vacuous.

use todr_check::{explore, ExploreConfig, RunOptions};

fn lease_options() -> RunOptions {
    RunOptions {
        read_leases: true,
        ..RunOptions::default()
    }
}

fn render_failures(report: &todr_check::ExploreReport) -> String {
    report
        .failures
        .iter()
        .map(|ce| format!("[seed {} kind {}] {}", ce.world_seed, ce.kind, ce.message))
        .collect::<Vec<_>>()
        .join("; ")
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn read_leases_survive_partition_schedules() {
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 10,
        perturbations: 2,
        shrink: true,
        storage_faults: false,
        options: lease_options(),
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        report.all_passed(),
        "read leases failed a partition schedule: {}",
        render_failures(&report)
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn read_leases_survive_torn_crash_schedules() {
    // Same sweep with storage faults on: torn log tails and stale
    // sectors at crash time. A lease is volatile state — it must die
    // with the incarnation and with every view change, however the
    // crash mangled the disk, so the expiry races here are the
    // sharpest the schedule vocabulary can produce.
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 10,
        perturbations: 1,
        shrink: true,
        storage_faults: true,
        options: lease_options(),
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        report.all_passed(),
        "read leases failed a torn-crash schedule: {}",
        render_failures(&report)
    );
}

/// Mutation self-test: `ServeReadWithoutLease` makes the engine answer
/// linearizable reads from its local green prefix in *any* live state —
/// no lease, no epoch seal, no expiry. A partitioned minority replica
/// then serves reads from a frozen prefix while the majority keeps
/// acknowledging writes, which `StaleLinearizableRead` must catch, and
/// ddmin must shrink the finding to a short schedule.
#[cfg(feature = "chaos-mutations")]
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn explorer_catches_unleased_reads_and_shrinks_them() {
    use todr_core::ChaosMutation;

    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 8,
        perturbations: 1,
        shrink: true,
        storage_faults: false,
        options: RunOptions {
            chaos: Some(ChaosMutation::ServeReadWithoutLease),
            ..lease_options()
        },
    };
    let report = explore(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        !report.failures.is_empty(),
        "the lease-blind engine passed every oracle — the read checking \
         is decorative"
    );
    for ce in &report.failures {
        eprintln!(
            "counterexample: seed {} pert {} kind {} schedule {:?}: {}",
            ce.world_seed, ce.perturbation, ce.kind, ce.schedule, ce.message
        );
    }
    assert!(
        report
            .failures
            .iter()
            .any(|ce| ce.message.contains("stale linearizable read")),
        "no finding was a stale linearizable read"
    );
    // Isolating one replica while the rest keep committing is all it
    // takes, so ddmin must strip the schedule to a couple of steps.
    let min_len = report
        .failures
        .iter()
        .map(|ce| ce.schedule.len())
        .min()
        .expect("non-empty");
    assert!(
        min_len <= 2,
        "no counterexample shrank below 3 steps (min {min_len})"
    );
    // Counterexamples must be replayable: the artifact alone reproduces
    // the identical failure classification.
    let ce = &report.failures[0];
    let replayed = ce
        .replay(&config.options)
        .expect_err("replaying a counterexample must fail again");
    assert_eq!(replayed.kind, ce.kind);
}
