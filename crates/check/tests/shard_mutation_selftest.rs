//! Mutation self-test for the cross-shard serializability oracle.
//!
//! The router is compiled (under the `chaos-mutations` feature only)
//! with a deliberate protocol breakage — `SkipCommitBarrier` releases a
//! transaction's commits the instant its timestamp merges, without
//! waiting for it to reach the head of every participant's FIFO commit
//! queue. Concurrent transactions sharing two groups can then commit in
//! opposite relative orders — exactly the pairwise serializability
//! violation the barrier exists to prevent. The sharded Explorer must
//! catch it and shrink the counterexample; the fixed router must pass
//! the identical sweep.
#![cfg(feature = "chaos-mutations")]

use todr_check::{explore_sharded, FailureKind, ShardExploreConfig, ShardRunOptions};
use todr_shard::ShardChaos;

fn sweep_config(chaos: Option<ShardChaos>) -> ShardExploreConfig {
    ShardExploreConfig {
        seed_start: 0,
        seed_count: 4,
        perturbations: 1,
        shrink: true,
        options: ShardRunOptions {
            // A dense cross-shard workload: most requests pay the full
            // prepare/merge/commit protocol, so concurrent transactions
            // race on the commit barrier constantly.
            cross_permille: 800,
            #[cfg(feature = "chaos-mutations")]
            shard_chaos: chaos,
            ..ShardRunOptions::default()
        },
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn explorer_catches_skipped_commit_barrier_and_shrinks_it() {
    let config = sweep_config(Some(ShardChaos::SkipCommitBarrier));
    let report = explore_sharded(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        !report.failures.is_empty(),
        "the barrier-skipping router passed every oracle — the cross-shard \
         serializability checking is decorative"
    );
    for ce in &report.failures {
        eprintln!(
            "counterexample: seed {} pert {} kind {} schedule {:?}: {}",
            ce.world_seed, ce.perturbation, ce.kind, ce.schedule, ce.message
        );
    }
    // The violation must be the ordering property itself, caught by the
    // trace oracle — not a crash or a hung router.
    assert!(
        report
            .failures
            .iter()
            .any(|ce| ce.kind == FailureKind::TraceOracle
                && ce.message.contains("opposite orders")),
        "no counterexample was a commit-order conflict"
    );
    // ddmin must reduce at least one finding to a short schedule (the
    // workload alone triggers the race; the schedule mostly just has to
    // exist, so minimal counterexamples are near-empty).
    let min_len = report
        .failures
        .iter()
        .map(|ce| ce.schedule.len())
        .min()
        .expect("non-empty");
    assert!(
        min_len <= 2,
        "no counterexample shrank below 3 steps (min {min_len})"
    );
    // Counterexamples must be replayable: the artifact alone reproduces
    // the identical failure classification.
    let ce = &report.failures[0];
    let replayed = ce
        .replay(&config.options)
        .expect_err("replaying a counterexample must fail again");
    assert_eq!(replayed.kind, ce.kind);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn honest_router_passes_the_same_sweep() {
    let config = sweep_config(None);
    let report = explore_sharded(&config, |_, _, _| {});
    assert!(
        report.all_passed(),
        "the honest router failed the sweep that catches SkipCommitBarrier: {}",
        report
            .failures
            .iter()
            .map(|ce| format!("[seed {} kind {}] {}", ce.world_seed, ce.kind, ce.message))
            .collect::<Vec<_>>()
            .join("; ")
    );
}
