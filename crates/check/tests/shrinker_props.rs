//! Properties of the delta-debugging shrinker, checked over synthetic
//! predicates where the ground-truth minimum is known by construction.
//!
//! Using synthetic predicates keeps these properties exhaustive and
//! fast; the end-to-end pairing with the real runner is covered by
//! `explorer_smoke.rs` and (under `chaos-mutations`) the mutation
//! self-test.

use todr_check::ddmin;
use todr_sim::SimRng;

/// A predicate that "fails" iff every element of `culprits` is present —
/// the monotone case ddmin is exact for.
fn superset_pred(culprits: &[u32]) -> impl FnMut(&[u32]) -> bool + '_ {
    move |candidate| culprits.iter().all(|c| candidate.contains(c))
}

#[test]
fn shrinks_to_exactly_the_culprit_set() {
    for seed in 0..50u64 {
        let mut rng = SimRng::new(seed);
        let len = (4 + rng.gen_range(28)) as usize;
        let input: Vec<u32> = (0..len as u32).collect();
        // 1..=4 distinct culprits scattered through the input.
        let n_culprits = (1 + rng.gen_range(4)) as usize;
        let mut culprits: Vec<u32> = Vec::new();
        while culprits.len() < n_culprits {
            let c = rng.gen_range(len as u64) as u32;
            if !culprits.contains(&c) {
                culprits.push(c);
            }
        }
        culprits.sort_unstable();
        let shrunk = ddmin(&input, superset_pred(&culprits));
        assert_eq!(
            shrunk, culprits,
            "seed {seed}: monotone predicate must shrink to its culprits"
        );
    }
}

#[test]
fn shrinking_is_deterministic() {
    let input: Vec<u32> = (0..40).collect();
    let culprits = [3, 17, 33];
    let a = ddmin(&input, superset_pred(&culprits));
    let b = ddmin(&input, superset_pred(&culprits));
    assert_eq!(a, b);
}

#[test]
fn result_never_grows_and_preserves_order() {
    for seed in 0..50u64 {
        let mut rng = SimRng::new(seed);
        let len = (1 + rng.gen_range(40)) as usize;
        let input: Vec<u32> = (0..len as u32).rev().collect(); // descending
        let threshold = rng.gen_range(1 + len as u64) as usize;
        // Fails when at least `threshold` elements remain (cardinality
        // predicate — non-monotone in element identity, still valid).
        let shrunk = ddmin(&input, |c: &[u32]| c.len() >= threshold);
        assert!(shrunk.len() <= input.len(), "seed {seed}: grew");
        // Result is a subsequence of the input.
        let mut it = input.iter();
        for s in &shrunk {
            assert!(
                it.any(|x| x == s),
                "seed {seed}: {shrunk:?} is not a subsequence of {input:?}"
            );
        }
    }
}

#[test]
fn shrunk_input_still_fails() {
    for seed in 0..50u64 {
        let mut rng = SimRng::new(seed);
        let len = (2 + rng.gen_range(30)) as usize;
        let input: Vec<u32> = (0..len as u32).collect();
        // An adversarial, non-monotone predicate: fails when the sum of
        // the candidate is divisible by k (k > 1), or when a fixed
        // element is present.
        let k = 2 + rng.gen_range(5);
        let marker = rng.gen_range(len as u64) as u32;
        let mut pred = move |c: &[u32]| {
            c.iter().map(|&x| u64::from(x)).sum::<u64>() % k == 0 || c.contains(&marker)
        };
        if !pred(&input) {
            continue; // predicate does not fail on the full input
        }
        let shrunk = ddmin(&input, &mut pred);
        assert!(
            pred(&shrunk),
            "seed {seed}: shrunk candidate {shrunk:?} no longer fails"
        );
    }
}

#[test]
fn result_is_one_minimal() {
    for seed in 0..30u64 {
        let mut rng = SimRng::new(seed);
        let len = (2 + rng.gen_range(20)) as usize;
        let input: Vec<u32> = (0..len as u32).collect();
        let k = 2 + rng.gen_range(4);
        let marker = rng.gen_range(len as u64) as u32;
        let mut pred = move |c: &[u32]| {
            !c.is_empty()
                && (c.iter().map(|&x| u64::from(x)).sum::<u64>() % k == 0 || c.contains(&marker))
        };
        if !pred(&input) {
            continue;
        }
        let shrunk = ddmin(&input, &mut pred);
        // 1-minimality: removing any single element makes it pass.
        for i in 0..shrunk.len() {
            let mut smaller = shrunk.clone();
            smaller.remove(i);
            assert!(
                !pred(&smaller),
                "seed {seed}: dropping element {i} of {shrunk:?} still fails — not 1-minimal"
            );
        }
    }
}
