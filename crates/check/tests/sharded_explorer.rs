//! The sharded Explorer over fault schedules: partitions and crashes
//! against a 2×3 sharded deployment with a dense cross-shard workload,
//! every oracle armed — per-group safety, per-group whole-history trace
//! properties, router drain, and the cross-shard serializability
//! oracle.

use todr_check::{
    explore_sharded, run_shard_case, tie_break_for, CaseSpec, ShardExploreConfig, ShardRunOptions,
};
use todr_sim::{SimRng, TieBreak};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_sweep_passes_every_oracle() {
    let config = ShardExploreConfig {
        seed_start: 0,
        seed_count: 3,
        perturbations: 2,
        shrink: true,
        options: ShardRunOptions::default(),
    };
    let report = explore_sharded(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert_eq!(report.cases_run, 6);
    assert!(
        report.all_passed(),
        "sharded sweep failed: {}",
        report
            .failures
            .iter()
            .map(|ce| format!(
                "[seed {} pert {} kind {}] {} (schedule {:?})",
                ce.world_seed, ce.perturbation, ce.kind, ce.message, ce.schedule
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_case_is_deterministic_under_both_tie_breaks() {
    // The determinism contract, sharded: the same (seed, perturbation,
    // schedule) replays to a byte-identical outcome — including the
    // full serialized metrics export — under both the FIFO tie-break
    // and a seeded same-instant perturbation.
    let mut rng = SimRng::new(11);
    let world_seed = rng.gen_range(1_000_000);
    let schedule = todr_check::generate_schedule_with(&mut rng, 6, false);
    let options = ShardRunOptions::default();
    for perturbation in 0..2u64 {
        assert!(matches!(
            tie_break_for(perturbation),
            TieBreak::Fifo | TieBreak::Seeded(_)
        ));
        let spec = CaseSpec {
            seed: world_seed,
            perturbation,
            schedule: schedule.clone(),
        };
        let first = run_shard_case(&spec, &options)
            .unwrap_or_else(|f| panic!("pert {perturbation} failed: {f}"));
        let second = run_shard_case(&spec, &options)
            .unwrap_or_else(|f| panic!("pert {perturbation} replay failed: {f}"));
        assert_eq!(
            first, second,
            "pert {perturbation}: sharded replay diverged (metrics or state)"
        );
        assert!(
            first.cross_txns > 0,
            "workload produced no cross-shard txns"
        );
        assert!(
            first.commit_pairs_checked > 0,
            "the cross-shard oracle compared no commit pairs"
        );
    }
}
