//! The sharded Explorer over fault schedules: partitions and crashes
//! against a 2×3 sharded deployment with a dense cross-shard workload,
//! every oracle armed — per-group safety, per-group whole-history trace
//! properties, router drain, and the cross-shard serializability
//! oracle.

use todr_check::{
    explore_sharded, run_shard_case, tie_break_for, CaseSpec, ShardExploreConfig, ShardRunOptions,
};
use todr_sim::{SimRng, TieBreak};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_sweep_passes_every_oracle() {
    let config = ShardExploreConfig {
        seed_start: 0,
        seed_count: 3,
        perturbations: 2,
        shrink: true,
        options: ShardRunOptions::default(),
    };
    let report = explore_sharded(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert_eq!(report.cases_run, 6);
    assert!(
        report.all_passed(),
        "sharded sweep failed: {}",
        report
            .failures
            .iter()
            .map(|ce| format!(
                "[seed {} pert {} kind {}] {} (schedule {:?})",
                ce.world_seed, ce.perturbation, ce.kind, ce.message, ce.schedule
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_case_is_deterministic_under_both_tie_breaks() {
    // The determinism contract, sharded: the same (seed, perturbation,
    // schedule) replays to a byte-identical outcome — including the
    // full serialized metrics export — under both the FIFO tie-break
    // and a seeded same-instant perturbation.
    let mut rng = SimRng::new(11);
    let world_seed = rng.gen_range(1_000_000);
    let schedule = todr_check::generate_schedule_with(&mut rng, 6, false);
    let options = ShardRunOptions::default();
    for perturbation in 0..2u64 {
        assert!(matches!(
            tie_break_for(perturbation),
            TieBreak::Fifo | TieBreak::Seeded(_)
        ));
        let spec = CaseSpec {
            seed: world_seed,
            perturbation,
            schedule: schedule.clone(),
        };
        let first = run_shard_case(&spec, &options)
            .unwrap_or_else(|f| panic!("pert {perturbation} failed: {f}"));
        let second = run_shard_case(&spec, &options)
            .unwrap_or_else(|f| panic!("pert {perturbation} replay failed: {f}"));
        assert_eq!(
            first, second,
            "pert {perturbation}: sharded replay diverged (metrics or state)"
        );
        assert!(
            first.cross_txns > 0,
            "workload produced no cross-shard txns"
        );
        assert!(
            first.commit_pairs_checked > 0,
            "the cross-shard oracle compared no commit pairs"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_sweep_passes_with_the_fast_path_on() {
    // The same sweep with the commutativity fast path enabled in every
    // group: single-shard updates fast-commit through the ShardRouter
    // while cross-shard transactions keep the full prepare/commit
    // path. Both oracle families must hold — the per-group fast-commit
    // clauses and the cross-shard serializability oracle.
    let config = ShardExploreConfig {
        seed_start: 0,
        seed_count: 3,
        perturbations: 2,
        shrink: true,
        options: ShardRunOptions {
            fast_path: true,
            ..ShardRunOptions::default()
        },
    };
    let report = explore_sharded(&config, |seed, pert, passed| {
        eprintln!(
            "seed {seed} pert {pert}: {}",
            if passed { "ok" } else { "FAIL" }
        );
    });
    assert!(
        report.all_passed(),
        "sharded fast-path sweep failed: {}",
        report
            .failures
            .iter()
            .map(|ce| format!(
                "[seed {} pert {} kind {}] {} (schedule {:?})",
                ce.world_seed, ce.perturbation, ce.kind, ce.message, ce.schedule
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn sharded_fast_path_actually_fast_commits() {
    // A quiet (no-nemesis) case with the fast path on must produce
    // genuine fast commits in the groups — otherwise the sweep above
    // would be vacuous — and still satisfy every oracle, including
    // cross-shard serializability over the mixed workload.
    let options = ShardRunOptions {
        fast_path: true,
        ..ShardRunOptions::default()
    };
    let spec = CaseSpec {
        seed: 7,
        perturbation: 0,
        schedule: Vec::new(),
    };
    let pass = run_shard_case(&spec, &options).unwrap_or_else(|f| panic!("quiet case failed: {f}"));
    assert!(pass.cross_txns > 0, "workload produced no cross-shard txns");
    // The counter only materializes on its first increment, so its
    // presence in the export proves fast commits happened.
    assert!(
        pass.metrics_json.contains("engine.fast_commits"),
        "no group recorded a single fast commit — the fast path never engaged"
    );
}
