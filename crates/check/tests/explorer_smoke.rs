//! End-to-end smoke tests for the Explorer: a small sweep over real
//! cluster runs must pass every oracle, and the determinism contract —
//! the same `(seed, perturbation, schedule)` replays byte-identically —
//! is pinned down here.
//!
//! These drive full simulated clusters, so they are ignored under the
//! debug profile (run `cargo test -p todr-check --release` to include
//! them); the cheap unit tests live next to the modules.

use todr_check::{explore, run_case, CaseSpec, ExploreConfig, RunOptions, Step};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn small_sweep_passes_every_oracle() {
    let config = ExploreConfig {
        seed_start: 0,
        seed_count: 3,
        perturbations: 2,
        ..ExploreConfig::default()
    };
    let mut log = Vec::new();
    let report = explore(&config, |seed, pert, passed| log.push((seed, pert, passed)));
    assert_eq!(report.cases_run, 6);
    assert!(
        report.all_passed(),
        "unexpected counterexamples: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.world_seed, f.perturbation, f.kind, f.schedule.clone()))
            .collect::<Vec<_>>()
    );
    // The progress callback saw every case, in sweep order.
    assert_eq!(log.len(), 6);
    assert!(log.iter().all(|&(_, _, passed)| passed));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn identical_specs_replay_byte_identically() {
    let spec = CaseSpec {
        seed: 42,
        perturbation: 1,
        schedule: vec![
            Step::Split { cut: 2 },
            Step::Merge,
            Step::Crash { server: 1 },
            Step::Recover { server: 1 },
        ],
    };
    let options = RunOptions::default();
    let first = run_case(&spec, &options).expect("case passes");
    let second = run_case(&spec, &options).expect("case passes");
    // Full struct equality includes the serialized metrics export:
    // every counter, histogram bucket and recorded protocol event of
    // the two runs matched byte for byte.
    assert_eq!(first, second);
    assert!(first.green_count > 0);
    assert!(!first.metrics_json.is_empty());
}

/// The packed wire protocol is subject to the same determinism
/// contract as the historical one: identical `(seed, perturbation,
/// schedule)` with packing on replays byte-identically — under both
/// tie-break policies, since the pack/sequencer-round timers must not
/// introduce nondeterministic event ordering.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn packed_runs_replay_byte_identically() {
    let options = RunOptions {
        max_pack: 8,
        ..RunOptions::default()
    };
    for perturbation in [0, 1] {
        let spec = CaseSpec {
            seed: 42,
            perturbation,
            schedule: vec![
                Step::Split { cut: 2 },
                Step::Merge,
                Step::Crash { server: 1 },
                Step::Recover { server: 1 },
            ],
        };
        let first = run_case(&spec, &options).expect("packed case passes");
        let second = run_case(&spec, &options).expect("packed case passes");
        assert_eq!(first, second, "perturbation {perturbation} diverged");
        assert!(first.green_count > 0);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under debug profile; run with --release"
)]
fn perturbations_explore_distinct_interleavings() {
    // Same seed and schedule under two tie-break policies: both must
    // pass (the freedoms are legal), but the runs genuinely differ —
    // otherwise the perturbation axis explores nothing.
    let schedule = vec![Step::Split { cut: 3 }, Step::Merge];
    let options = RunOptions::default();
    let fifo = run_case(
        &CaseSpec {
            seed: 7,
            perturbation: 0,
            schedule: schedule.clone(),
        },
        &options,
    )
    .expect("FIFO case passes");
    let seeded = run_case(
        &CaseSpec {
            seed: 7,
            perturbation: 1,
            schedule,
        },
        &options,
    )
    .expect("seeded case passes");
    assert_ne!(
        fifo.metrics_json, seeded.metrics_json,
        "perturbation 1 produced the exact FIFO run — tie-break hook inert?"
    );
}
