//! Extension A7: the clients × EVS-packing saturation sweep of the
//! delayed-writes engine. Prints the full sweep table, then registers a
//! scaled-down cell with Criterion for host-time tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::{PAPER_CLIENT_SWEEP, PAPER_REPLICAS};
use todr_harness::experiments::saturation;
use todr_sim::SimDuration;

fn reproduce(c: &mut Criterion) {
    let sweep = saturation::run(
        PAPER_REPLICAS,
        &PAPER_CLIENT_SWEEP,
        &[1, 2, 4, 8],
        SimDuration::from_secs(3),
        42,
    );
    println!("\n{}", sweep.to_table());

    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    group.bench_function("engine_packed8_5servers_6clients_500ms", |b| {
        b.iter(|| saturation::run(5, &[6], &[8], SimDuration::from_millis(500), 42))
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
