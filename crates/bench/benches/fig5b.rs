//! Regenerates Figure 5(b): the engine with delayed vs forced disk
//! writes on 14 replicas.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::{PAPER_CLIENT_SWEEP, PAPER_REPLICAS};
use todr_harness::experiments::{fig5b, run_workload, Protocol};
use todr_sim::SimDuration;

fn reproduce(c: &mut Criterion) {
    let fig = fig5b::run_packed(
        PAPER_REPLICAS,
        &PAPER_CLIENT_SWEEP,
        SimDuration::from_secs(3),
        42,
        8,
    );
    println!("\n{}", fig.to_table());

    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    group.bench_function("engine_delayed_5servers_4clients_500ms", |b| {
        b.iter(|| {
            run_workload(
                Protocol::Engine {
                    delayed_writes: true,
                },
                5,
                4,
                SimDuration::from_millis(200),
                SimDuration::from_millis(500),
                42,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
