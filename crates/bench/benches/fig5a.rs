//! Regenerates Figure 5(a): throughput vs number of clients for the
//! engine (forced writes), COReL and two-phase commit on 14 replicas.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::{PAPER_CLIENT_SWEEP, PAPER_REPLICAS};
use todr_harness::experiments::{fig5a, run_workload, Protocol};
use todr_sim::SimDuration;

fn reproduce(c: &mut Criterion) {
    // The deliverable: the full figure, printed once.
    let fig = fig5a::run(
        PAPER_REPLICAS,
        &PAPER_CLIENT_SWEEP,
        SimDuration::from_secs(3),
        42,
    );
    println!("\n{}", fig.to_table());

    // Host-time regression tracking on a scaled-down point.
    let mut group = c.benchmark_group("fig5a");
    group.sample_size(10);
    group.bench_function("engine_5servers_4clients_500ms", |b| {
        b.iter(|| {
            run_workload(
                Protocol::Engine {
                    delayed_writes: false,
                },
                5,
                4,
                SimDuration::from_millis(200),
                SimDuration::from_millis(500),
                42,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
