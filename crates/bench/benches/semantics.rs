//! Extension A3: the relaxed application semantics of §6 under a
//! partition — what answers a non-primary component can give.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::PAPER_REPLICAS;
use todr_harness::experiments::semantics;

fn reproduce(c: &mut Criterion) {
    let report = semantics::run(PAPER_REPLICAS, 42);
    println!("\n{}", report.to_table());

    let mut group = c.benchmark_group("semantics");
    group.sample_size(10);
    group.bench_function("semantics_5servers", |b| b.iter(|| semantics::run(5, 42)));
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
