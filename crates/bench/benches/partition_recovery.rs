//! Extension A1: membership-change cost — re-primary time after a
//! partition and convergence time after the merge (the engine's "one
//! end-to-end exchange per connectivity change" claim).

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::PAPER_REPLICAS;
use todr_harness::experiments::partition;

fn reproduce(c: &mut Criterion) {
    let report = partition::run(PAPER_REPLICAS, 42);
    println!("\n{}", report.to_table());

    let mut group = c.benchmark_group("partition_recovery");
    group.sample_size(10);
    group.bench_function("partition_5servers", |b| b.iter(|| partition::run(5, 42)));
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
