//! Extension A2: online replica instantiation (§5.1) — bootstrap time
//! and throughput impact of a PERSISTENT_JOIN under load.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::PAPER_REPLICAS;
use todr_harness::experiments::join;

fn reproduce(c: &mut Criterion) {
    let report = join::run(PAPER_REPLICAS, 3, 42);
    println!("\n{}", report.to_table());

    let mut group = c.benchmark_group("dynamic_join");
    group.sample_size(10);
    group.bench_function("join_4servers_1s_preload", |b| {
        b.iter(|| join::run(4, 1, 42))
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
