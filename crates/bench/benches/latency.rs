//! Regenerates the §7 latency experiment: one client submits 2000
//! sequential actions; average response time per protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_bench::PAPER_REPLICAS;
use todr_harness::experiments::latency;

fn reproduce(c: &mut Criterion) {
    let table = latency::run(PAPER_REPLICAS, 2000, 42);
    println!("\n{}", table.to_table());

    let mut group = c.benchmark_group("latency");
    group.sample_size(10);
    group.bench_function("latency_5servers_100actions", |b| {
        b.iter(|| latency::run(5, 100, 42))
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
