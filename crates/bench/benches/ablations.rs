//! Extensions A4–A6: loss sweep, LAN-vs-WAN latency, forced-write
//! latency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use todr_harness::experiments::ablations;
use todr_sim::SimDuration;

fn reproduce(c: &mut Criterion) {
    let points = ablations::loss_sweep(
        8,
        8,
        &[0.0, 0.01, 0.05, 0.10, 0.20],
        SimDuration::from_secs(2),
        42,
    );
    println!("\n{}", ablations::loss_sweep_table(&points, 8, 8));

    let rows = ablations::wan_latency(8, 500, 42);
    println!("{}", ablations::wan_latency_table(&rows, 8));

    let points = ablations::fsync_sweep(8, 8, &[1, 5, 10, 20, 40], SimDuration::from_secs(2), 42);
    println!("{}", ablations::fsync_sweep_table(&points, 8, 8));

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("loss_sweep_small", |b| {
        b.iter(|| ablations::loss_sweep(4, 4, &[0.05], SimDuration::from_millis(500), 42))
    });
    group.finish();
}

criterion_group!(benches, reproduce);
criterion_main!(benches);
