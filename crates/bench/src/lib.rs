//! # todr-bench — benchmark entry points
//!
//! One Criterion bench target per table/figure of the paper's
//! evaluation plus the ablation experiments. Each target first prints
//! the full reproduced table (the deliverable — compare its shape
//! against the paper's), then registers a scaled-down run with Criterion
//! so `cargo bench` also tracks host-time regressions of the simulator
//! itself.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig5a` | Figure 5(a): engine vs COReL vs 2PC throughput, 14 replicas |
//! | `fig5b` | Figure 5(b): delayed vs forced writes |
//! | `latency` | §7 latency experiment (1 client × 2000 actions) |
//! | `partition_recovery` | extension A1: membership-change cost |
//! | `dynamic_join` | extension A2: online replica instantiation |
//! | `semantics` | extension A3: relaxed semantics under partition |
//! | `saturation` | extension A7: clients × EVS-packing saturation sweep |
//!
//! Run a single figure with e.g. `cargo bench --bench fig5a`.

/// The replica count used by the paper's evaluation.
pub const PAPER_REPLICAS: u32 = 14;

/// The client sweep of Figures 5(a)/5(b).
pub const PAPER_CLIENT_SWEEP: [usize; 8] = [1, 2, 4, 6, 8, 10, 12, 14];
