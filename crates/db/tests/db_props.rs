//! Randomized (seeded, deterministic) tests of the database substrate:
//! the state-machine property (determinism) the whole replication scheme
//! rests on, and the algebraic claims behind the §6 relaxed-semantics
//! classes.

use todr_db::{ApplyOutcome, Database, Op, Query, QueryResult, Value};

/// A tiny self-contained splitmix64 generator, so these tests need no
/// dependency beyond `todr-db` itself.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_value(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.next() as i64),
        3 => {
            let len = rng.below(13) as usize;
            Value::Text(
                (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect(),
            )
        }
        _ => Value::Bytes((0..rng.below(16)).map(|_| rng.next() as u8).collect()),
    }
}

/// Small keyspace to force collisions.
fn gen_key(rng: &mut Rng) -> String {
    format!(
        "{}{}",
        (b'a' + rng.below(4) as u8) as char,
        (b'0' + rng.below(10) as u8) as char
    )
}

fn gen_table(rng: &mut Rng) -> String {
    if rng.below(2) == 0 {
        "t".into()
    } else {
        "u".into()
    }
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(7) {
        0 => Op::Put {
            table: gen_table(rng),
            key: gen_key(rng),
            value: gen_value(rng),
        },
        1 => Op::Delete {
            table: gen_table(rng),
            key: gen_key(rng),
        },
        2 => Op::Incr {
            table: gen_table(rng),
            key: gen_key(rng),
            delta: rng.next() as i32 as i64,
        },
        3 => Op::TsPut {
            table: gen_table(rng),
            key: gen_key(rng),
            value: gen_value(rng),
            ts: rng.below(1 << 32),
        },
        4 => Op::proc(
            "debit_if_sufficient",
            vec![Value::Text(gen_key(rng)), Value::Int(rng.below(500) as i64)],
        ),
        5 => Op::Batch(
            (0..rng.below(3))
                .map(|_| Op::Put {
                    table: gen_table(rng),
                    key: gen_key(rng),
                    value: gen_value(rng),
                })
                .collect(),
        ),
        _ => Op::Noop,
    }
}

fn gen_ops(rng: &mut Rng, max: u64) -> Vec<Op> {
    (0..rng.below(max)).map(|_| gen_op(rng)).collect()
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// The state-machine property: identical op sequences from identical
/// states produce identical databases (digest, content, outcomes).
#[test]
fn apply_is_deterministic() {
    let mut rng = Rng(0xdb01);
    for _ in 0..256 {
        let ops = gen_ops(&mut rng, 60);
        let mut a = Database::new();
        let mut b = Database::new();
        for op in &ops {
            let ra = a.apply(op);
            let rb = b.apply(op);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(&a, &b);
    }
}

/// Commutative class (§6): increments converge under any permutation.
#[test]
fn increments_commute() {
    let mut rng = Rng(0xdb02);
    for _ in 0..256 {
        let deltas: Vec<(String, i64)> = (0..1 + rng.below(29))
            .map(|_| (gen_key(&mut rng), rng.below(200) as i64 - 100))
            .collect();
        let mut forward = Database::new();
        for (k, d) in &deltas {
            forward.apply(&Op::incr("t", k.clone(), *d));
        }
        let mut shuffled = deltas.clone();
        let seed = rng.next();
        shuffle(&mut shuffled, seed);
        let mut backward = Database::new();
        for (k, d) in &shuffled {
            backward.apply(&Op::incr("t", k.clone(), *d));
        }
        assert_eq!(forward.digest(), backward.digest());
    }
}

/// Timestamp class (§6): last-writer-wins converges under any
/// permutation when timestamps are distinct.
#[test]
fn timestamped_puts_converge() {
    let mut rng = Rng(0xdb03);
    for _ in 0..256 {
        // Distinct timestamps by construction.
        let stamped: Vec<(String, i64, u64)> = (0..1 + rng.below(19))
            .enumerate()
            .map(|(i, _)| (gen_key(&mut rng), rng.next() as i64, i as u64 + 1))
            .collect();
        let mut forward = Database::new();
        for (k, v, ts) in &stamped {
            forward.apply(&Op::ts_put("t", k.clone(), Value::Int(*v), *ts));
        }
        let mut shuffled = stamped.clone();
        let seed = rng.next();
        shuffle(&mut shuffled, seed);
        let mut backward = Database::new();
        for (k, v, ts) in &shuffled {
            backward.apply(&Op::ts_put("t", k.clone(), Value::Int(*v), *ts));
        }
        assert_eq!(forward.digest(), backward.digest());
    }
}

/// Digests distinguish states: a put of a fresh value to a fresh key
/// always changes the digest.
#[test]
fn digest_changes_on_new_data() {
    let mut rng = Rng(0xdb04);
    for _ in 0..128 {
        let mut db = Database::new();
        for op in &gen_ops(&mut rng, 30) {
            db.apply(op);
        }
        let before = db.digest();
        db.apply(&Op::put("fresh_table", "fresh_key", Value::Int(424242)));
        assert_ne!(before, db.digest());
    }
}

/// Aborted ops leave no trace: a Checked op with a failing
/// expectation never changes the digest.
#[test]
fn aborts_are_clean() {
    let mut rng = Rng(0xdb05);
    for _ in 0..128 {
        let mut db = Database::new();
        for op in &gen_ops(&mut rng, 30) {
            db.apply(op);
        }
        let before = db.digest();
        let outcome = db.apply(&Op::Checked {
            expect: vec![(
                "no_such_table".into(),
                "k".into(),
                Some(Value::Int(123456789)),
            )],
            then: vec![Op::put("t", "x", Value::Int(1))],
        });
        assert_eq!(outcome, ApplyOutcome::Aborted);
        assert_eq!(before, db.digest());
    }
}

/// Snapshots are faithful: applying the same suffix to a snapshot
/// and to the original yields identical states.
#[test]
fn snapshots_are_faithful() {
    let mut rng = Rng(0xdb06);
    for _ in 0..128 {
        let prefix = gen_ops(&mut rng, 20);
        let suffix = gen_ops(&mut rng, 20);
        let mut original = Database::new();
        for op in &prefix {
            original.apply(op);
        }
        let mut snap = original.snapshot();
        for op in &suffix {
            original.apply(op);
            snap.apply(op);
        }
        assert_eq!(original.digest(), snap.digest());
    }
}

/// Query evaluation never mutates.
#[test]
fn queries_are_pure() {
    let mut rng = Rng(0xdb07);
    for _ in 0..128 {
        let mut db = Database::new();
        for op in &gen_ops(&mut rng, 25) {
            db.apply(op);
        }
        let t = gen_table(&mut rng);
        let k = gen_key(&mut rng);
        let before = db.digest();
        let _ = db.query(&Query::get(t.clone(), k.clone()));
        let _ = db.query(&Query::scan(t.clone(), ""));
        let _ = db.query(&Query::Count { table: t });
        let _ = db.query(&Query::Digest);
        assert_eq!(before, db.digest());
    }
}

#[test]
fn scan_results_are_sorted_and_consistent_with_get() {
    let mut db = Database::new();
    for k in ["b1", "a2", "a1", "c3", "a3"] {
        db.apply(&Op::put("t", k, k));
    }
    let QueryResult::Rows(rows) = db.query(&Query::scan("t", "a")) else {
        panic!("expected rows");
    };
    let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["a1", "a2", "a3"]);
    for (k, v) in &rows {
        assert_eq!(db.get("t", k), Some(v));
    }
}
