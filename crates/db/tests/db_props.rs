//! Property-based tests of the database substrate: the state-machine
//! property (determinism) the whole replication scheme rests on, and
//! the algebraic claims behind the §6 relaxed-semantics classes.

use proptest::prelude::*;
use todr_db::{ApplyOutcome, Database, Op, Query, QueryResult, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,12}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

fn key() -> impl Strategy<Value = String> {
    "[a-d][0-9]" // small keyspace to force collisions
}

fn table() -> impl Strategy<Value = String> {
    "[tu]"
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (table(), key(), arb_value()).prop_map(|(t, k, v)| Op::Put {
            table: t,
            key: k,
            value: v
        }),
        (table(), key()).prop_map(|(t, k)| Op::Delete { table: t, key: k }),
        (table(), key(), any::<i32>()).prop_map(|(t, k, d)| Op::Incr {
            table: t,
            key: k,
            delta: d as i64
        }),
        (table(), key(), arb_value(), any::<u32>()).prop_map(|(t, k, v, ts)| Op::TsPut {
            table: t,
            key: k,
            value: v,
            ts: ts as u64
        }),
        (key(), 0i64..500).prop_map(|(k, amt)| Op::proc(
            "debit_if_sufficient",
            vec![Value::Text(k), Value::Int(amt)]
        )),
        proptest::collection::vec(
            (table(), key(), arb_value()).prop_map(|(t, k, v)| Op::Put {
                table: t,
                key: k,
                value: v
            }),
            0..3
        )
        .prop_map(Op::Batch),
        Just(Op::Noop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The state-machine property: identical op sequences from identical
    /// states produce identical databases (digest, content, outcomes).
    #[test]
    fn apply_is_deterministic(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut a = Database::new();
        let mut b = Database::new();
        for op in &ops {
            let ra = a.apply(op);
            let rb = b.apply(op);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(&a, &b);
    }

    /// Commutative class (§6): increments converge under any permutation.
    #[test]
    fn increments_commute(
        deltas in proptest::collection::vec((key(), -100i64..100), 1..30),
        seed in any::<u64>(),
    ) {
        let mut forward = Database::new();
        for (k, d) in &deltas {
            forward.apply(&Op::incr("t", k.clone(), *d));
        }
        // A deterministic shuffle derived from the seed.
        let mut shuffled = deltas.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut backward = Database::new();
        for (k, d) in &shuffled {
            backward.apply(&Op::incr("t", k.clone(), *d));
        }
        prop_assert_eq!(forward.digest(), backward.digest());
    }

    /// Timestamp class (§6): last-writer-wins converges under any
    /// permutation when timestamps are distinct.
    #[test]
    fn timestamped_puts_converge(
        entries in proptest::collection::vec((key(), any::<i64>()), 1..20),
        seed in any::<u64>(),
    ) {
        // Distinct timestamps by construction.
        let stamped: Vec<(String, i64, u64)> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| (k, v, i as u64 + 1))
            .collect();
        let mut forward = Database::new();
        for (k, v, ts) in &stamped {
            forward.apply(&Op::ts_put("t", k.clone(), Value::Int(*v), *ts));
        }
        let mut shuffled = stamped.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut backward = Database::new();
        for (k, v, ts) in &shuffled {
            backward.apply(&Op::ts_put("t", k.clone(), Value::Int(*v), *ts));
        }
        prop_assert_eq!(forward.digest(), backward.digest());
    }

    /// Digests distinguish states: a put of a fresh value to a fresh key
    /// always changes the digest.
    #[test]
    fn digest_changes_on_new_data(ops in proptest::collection::vec(arb_op(), 0..30)) {
        let mut db = Database::new();
        for op in &ops {
            db.apply(op);
        }
        let before = db.digest();
        db.apply(&Op::put("fresh_table", "fresh_key", Value::Int(424242)));
        prop_assert_ne!(before, db.digest());
    }

    /// Aborted ops leave no trace: a Checked op with a failing
    /// expectation never changes the digest.
    #[test]
    fn aborts_are_clean(ops in proptest::collection::vec(arb_op(), 0..30)) {
        let mut db = Database::new();
        for op in &ops {
            db.apply(op);
        }
        let before = db.digest();
        let outcome = db.apply(&Op::Checked {
            expect: vec![(
                "no_such_table".into(),
                "k".into(),
                Some(Value::Int(123456789)),
            )],
            then: vec![Op::put("t", "x", Value::Int(1))],
        });
        prop_assert_eq!(outcome, ApplyOutcome::Aborted);
        prop_assert_eq!(before, db.digest());
    }

    /// Snapshots are faithful: applying the same suffix to a snapshot
    /// and to the original yields identical states.
    #[test]
    fn snapshots_are_faithful(
        prefix in proptest::collection::vec(arb_op(), 0..20),
        suffix in proptest::collection::vec(arb_op(), 0..20),
    ) {
        let mut original = Database::new();
        for op in &prefix {
            original.apply(op);
        }
        let mut snap = original.snapshot();
        for op in &suffix {
            original.apply(op);
            snap.apply(op);
        }
        prop_assert_eq!(original.digest(), snap.digest());
    }

    /// Query evaluation never mutates.
    #[test]
    fn queries_are_pure(
        ops in proptest::collection::vec(arb_op(), 0..25),
        t in table(),
        k in key(),
    ) {
        let mut db = Database::new();
        for op in &ops {
            db.apply(op);
        }
        let before = db.digest();
        let _ = db.query(&Query::get(t.clone(), k.clone()));
        let _ = db.query(&Query::scan(t.clone(), ""));
        let _ = db.query(&Query::Count { table: t });
        let _ = db.query(&Query::Digest);
        prop_assert_eq!(before, db.digest());
    }
}

#[test]
fn scan_results_are_sorted_and_consistent_with_get() {
    let mut db = Database::new();
    for k in ["b1", "a2", "a1", "c3", "a3"] {
        db.apply(&Op::put("t", k, k));
    }
    let QueryResult::Rows(rows) = db.query(&Query::scan("t", "a")) else {
        panic!("expected rows");
    };
    let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["a1", "a2", "a3"]);
    for (k, v) in &rows {
        assert_eq!(db.get("t", k), Some(v));
    }
}
