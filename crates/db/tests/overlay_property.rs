//! Randomized property tests for the read-tier database contract:
//! a red overlay is *exactly* the red suffix replayed over the green
//! snapshot, and the green snapshot never observes a red-only write.
//!
//! The engine builds its `RedOverlay` view by cloning the green
//! database and applying the locally ordered (red) suffix in order.
//! These properties pin down everything the tiers rely on: overlay
//! answers match a database that applied green + red sequentially,
//! constructing the overlay leaves the green snapshot bit-identical,
//! and the row-version counters (the staleness oracle's clock) advance
//! by exactly one per applied write.
//!
//! Deterministic pseudo-randomness only (a splitmix64 walk) — no RNG
//! crate, and failures replay exactly from the iteration seed.

use todr_db::{Database, Op, Query, Value};

/// SplitMix64 (public domain): the repo's standard dependency-free
/// deterministic generator.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Walk(u64);

impl Walk {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const KEYS: u64 = 8;

fn random_op(walk: &mut Walk) -> Op {
    let key = format!("k{}", walk.below(KEYS));
    match walk.below(4) {
        0 => Op::put("t", key, Value::Int(walk.below(1000) as i64)),
        1 => Op::incr("t", key, walk.below(9) as i64 - 4),
        2 => Op::delete("t", key),
        // Timestamped last-writer-wins put; small timestamp range so
        // both winning and losing applications occur.
        _ => {
            let ts = walk.below(16);
            Op::ts_put("t", key, Value::Int(ts as i64), ts)
        }
    }
}

#[test]
fn overlay_is_red_suffix_over_green_snapshot() {
    for iteration in 0..200u64 {
        let mut walk = Walk(0xC0FFEE ^ iteration);
        let n_green = walk.below(24) as usize;
        let n_red = 1 + walk.below(12) as usize;
        let green_ops: Vec<Op> = (0..n_green).map(|_| random_op(&mut walk)).collect();
        let red_ops: Vec<Op> = (0..n_red).map(|_| random_op(&mut walk)).collect();

        // The green snapshot: only the green prefix applied.
        let mut green = Database::new();
        for op in &green_ops {
            green.apply(op);
        }
        let green_digest = green.digest();

        // The overlay, built the way the engine builds its dirty view:
        // clone the green snapshot, replay the red suffix.
        let mut overlay = green.snapshot();
        for op in &red_ops {
            overlay.apply(op);
        }

        // Reference: one database that applied green + red sequentially.
        let mut reference = Database::new();
        for op in green_ops.iter().chain(red_ops.iter()) {
            reference.apply(op);
        }

        for k in 0..KEYS {
            let key = format!("k{k}");
            let q = Query::get("t", &key);
            assert_eq!(
                overlay.query(&q),
                reference.query(&q),
                "iteration {iteration}: overlay of {key} diverges from \
                 sequential application"
            );
            assert_eq!(
                overlay.row_version("t", &key),
                reference.row_version("t", &key),
                "iteration {iteration}: overlay version of {key} diverges"
            );
        }
        assert_eq!(
            overlay.digest(),
            reference.digest(),
            "iteration {iteration}: overlay digest diverges"
        );

        // Building the overlay must not perturb the green snapshot.
        assert_eq!(
            green.digest(),
            green_digest,
            "iteration {iteration}: overlay construction mutated the \
             green snapshot"
        );
    }
}

#[test]
fn green_snapshot_never_observes_a_red_only_write() {
    for iteration in 0..200u64 {
        let mut walk = Walk(0xBEEF ^ iteration);
        let n_green = walk.below(16) as usize;
        let green_ops: Vec<Op> = (0..n_green).map(|_| random_op(&mut walk)).collect();

        let mut green = Database::new();
        for op in &green_ops {
            green.apply(op);
        }

        // Record every key's pre-red answer and version, replay a red
        // suffix on the overlay only, and require the green snapshot's
        // answers to be byte-stable throughout.
        let before: Vec<_> = (0..KEYS)
            .map(|k| {
                let key = format!("k{k}");
                (
                    green.query(&Query::get("t", &key)),
                    green.row_version("t", &key),
                )
            })
            .collect();
        let mut overlay = green.snapshot();
        for _ in 0..1 + walk.below(12) {
            overlay.apply(&random_op(&mut walk));
        }
        for k in 0..KEYS {
            let key = format!("k{k}");
            assert_eq!(
                green.query(&Query::get("t", &key)),
                before[k as usize].0,
                "iteration {iteration}: green snapshot observed a \
                 red-only write to {key}"
            );
            assert_eq!(
                green.row_version("t", &key),
                before[k as usize].1,
                "iteration {iteration}: green version of {key} moved \
                 without a green write"
            );
        }
    }
}

#[test]
fn row_versions_count_every_applied_write() {
    // Puts, deletes and losing timestamped puts all bump the version:
    // the counter is a write clock, not a value hash — the staleness
    // oracle needs it to advance even when the value round-trips back.
    let mut db = Database::new();
    assert_eq!(db.row_version("t", "k"), 0);
    db.apply(&Op::put("t", "k", Value::Int(1)));
    assert_eq!(db.row_version("t", "k"), 1);
    db.apply(&Op::put("t", "k", Value::Int(1)));
    assert_eq!(db.row_version("t", "k"), 2, "same-value put must bump");
    db.apply(&Op::delete("t", "k"));
    assert_eq!(db.row_version("t", "k"), 3, "delete must bump");
    db.apply(&Op::ts_put("t", "k", Value::Int(9), 10));
    assert_eq!(db.row_version("t", "k"), 4);
    db.apply(&Op::ts_put("t", "k", Value::Int(8), 5));
    assert_eq!(
        db.row_version("t", "k"),
        5,
        "a losing (older-timestamp) put still bumps the write clock"
    );
}
