//! # todr-db — the deterministic replicated-database substrate
//!
//! The paper's replication engine treats the database as a deterministic
//! state machine (§2.2): *"an action defines a transition from the current
//! state of the database to the next state; the next state is completely
//! determined by the current state and the action."* This crate provides
//! that state machine:
//!
//! * [`Database`] — named tables of key/value rows with a deterministic
//!   [`Database::apply`] for update operations and [`Database::query`] for
//!   reads;
//! * [`Op`] — the update part of an action, covering every semantic class
//!   discussed in §6 of the paper: plain puts/deletes, **commutative**
//!   increments, **timestamp** (last-writer-wins) puts, **active**
//!   transactions (deterministic stored procedures, [`procs`]), and the
//!   two-action emulation of **interactive** transactions
//!   ([`Op::Checked`]: apply updates only if previously-read values are
//!   unchanged, otherwise the action deterministically aborts everywhere);
//! * [`Query`] — the query part of an action;
//! * content [`Database::digest`]s and snapshots for state transfer to
//!   joining replicas and for cross-replica consistency checking in tests.
//!
//! The database is intentionally simple — the paper's evaluation bypasses
//! the DBMS entirely ("clients receive responses when the actions are
//! globally ordered, without any interaction with a database", §7) — but
//! it is complete enough that every engine code path (green apply, red
//! dirty views, state transfer on `PERSISTENT_JOIN`) operates on real
//! state.
//!
//! ```
//! use todr_db::{Database, Op, Query, QueryResult, Value};
//!
//! let mut db = Database::new();
//! db.apply(&Op::put("accounts", "alice", Value::Int(100)));
//! db.apply(&Op::incr("accounts", "alice", -30));
//! assert_eq!(
//!     db.query(&Query::get("accounts", "alice")),
//!     QueryResult::Value(Some(Value::Int(70))),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
mod database;
pub mod keys;
mod op;
pub mod procs;
mod value;

pub use database::{ApplyOutcome, Database, TableStats};
pub use op::{Op, Query, QueryResult, ReadConsistency};
pub use value::Value;
