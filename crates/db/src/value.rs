//! Cell values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A value stored in a database cell.
///
/// ```
/// use todr_db::Value;
///
/// let v = Value::Int(42);
/// assert_eq!(v.as_int(), Some(42));
/// assert_eq!(v.to_string(), "42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absent / SQL NULL.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes (e.g. an opaque application payload).
    Bytes(Vec<u8>),
}

impl Value {
    /// The integer inside, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The text inside, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Feeds this value into a running FNV-1a digest; used for database
    /// content digests.
    pub(crate) fn digest_into(&self, h: &mut u64) {
        fn byte(h: &mut u64, b: u8) {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
        match self {
            Value::Null => byte(h, 0),
            Value::Bool(b) => {
                byte(h, 1);
                byte(h, *b as u8);
            }
            Value::Int(n) => {
                byte(h, 2);
                for b in n.to_le_bytes() {
                    byte(h, b);
                }
            }
            Value::Text(s) => {
                byte(h, 3);
                for b in s.as_bytes() {
                    byte(h, *b);
                }
            }
            Value::Bytes(v) => {
                byte(h, 4);
                for b in v {
                    byte(h, *b);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Text("x".into()).as_int(), None);
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }

    #[test]
    fn digest_distinguishes_types() {
        // Int(0), Bool(false), Null must digest differently.
        let digests: Vec<u64> = [Value::Int(0), Value::Bool(false), Value::Null]
            .iter()
            .map(|v| {
                let mut h = 0xcbf29ce484222325;
                v.digest_into(&mut h);
                h
            })
            .collect();
        assert_ne!(digests[0], digests[1]);
        assert_ne!(digests[1], digests[2]);
        assert_ne!(digests[0], digests[2]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
        assert_eq!(Value::Bytes(vec![0, 1]).to_string(), "<2 bytes>");
    }
}
