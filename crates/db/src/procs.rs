//! Deterministic stored procedures ("active transactions", §6).
//!
//! An active transaction names a procedure that is executed *when the
//! action is ordered*, not when the client submits it. Correctness
//! requires the procedure to be deterministic and to depend only on the
//! current database state and its arguments; every replica then computes
//! the same transition. This module is the registry of built-in
//! procedures used by the examples and tests; applications embed their own
//! logic by the same pattern.

use crate::database::{ApplyOutcome, Database};
use crate::value::Value;

/// Executes the named procedure against `db`.
///
/// Returns [`ApplyOutcome::Aborted`] for unknown procedures or argument
/// mismatches — deterministically, so every replica agrees that the
/// action aborted.
///
/// # Built-in procedures
///
/// | name | args | effect |
/// |---|---|---|
/// | `transfer` | `[from_key, to_key, amount]` | moves `amount` between two integer rows of table `accounts` if the source balance suffices, else aborts |
/// | `debit_if_sufficient` | `[key, amount]` | subtracts `amount` from `accounts/key` if the balance suffices, else aborts |
/// | `append_history` | `[key, text]` | appends `text` to the text row `history/key` |
/// | `stock_restock_if_low` | `[key, threshold, amount]` | adds `amount` to `inventory/key` only when the current level is below `threshold` |
pub fn execute(db: &mut Database, name: &str, args: &[Value]) -> ApplyOutcome {
    match name {
        "transfer" => transfer(db, args),
        "debit_if_sufficient" => debit_if_sufficient(db, args),
        "append_history" => append_history(db, args),
        "stock_restock_if_low" => stock_restock_if_low(db, args),
        _ => ApplyOutcome::Aborted,
    }
}

fn int_row(db: &Database, table: &str, key: &str) -> i64 {
    db.get(table, key).and_then(|v| v.as_int()).unwrap_or(0)
}

fn transfer(db: &mut Database, args: &[Value]) -> ApplyOutcome {
    let (Some(Value::Text(from)), Some(Value::Text(to)), Some(Value::Int(amount))) =
        (args.first(), args.get(1), args.get(2))
    else {
        return ApplyOutcome::Aborted;
    };
    let balance = int_row(db, "accounts", from);
    if balance < *amount || *amount < 0 {
        return ApplyOutcome::Aborted;
    }
    let from_new = balance - amount;
    let to_new = int_row(db, "accounts", to) + amount;
    db.put("accounts", from, Value::Int(from_new));
    db.put("accounts", to, Value::Int(to_new));
    ApplyOutcome::Applied
}

fn debit_if_sufficient(db: &mut Database, args: &[Value]) -> ApplyOutcome {
    let (Some(Value::Text(key)), Some(Value::Int(amount))) = (args.first(), args.get(1)) else {
        return ApplyOutcome::Aborted;
    };
    let balance = int_row(db, "accounts", key);
    if balance < *amount || *amount < 0 {
        return ApplyOutcome::Aborted;
    }
    db.put("accounts", key, Value::Int(balance - amount));
    ApplyOutcome::Applied
}

fn append_history(db: &mut Database, args: &[Value]) -> ApplyOutcome {
    let (Some(Value::Text(key)), Some(Value::Text(text))) = (args.first(), args.get(1)) else {
        return ApplyOutcome::Aborted;
    };
    let mut existing = db
        .get("history", key)
        .and_then(|v| v.as_text().map(str::to_string))
        .unwrap_or_default();
    if !existing.is_empty() {
        existing.push(';');
    }
    existing.push_str(text);
    db.put("history", key, Value::Text(existing));
    ApplyOutcome::Applied
}

fn stock_restock_if_low(db: &mut Database, args: &[Value]) -> ApplyOutcome {
    let (Some(Value::Text(key)), Some(Value::Int(threshold)), Some(Value::Int(amount))) =
        (args.first(), args.get(1), args.get(2))
    else {
        return ApplyOutcome::Aborted;
    };
    let level = int_row(db, "inventory", key);
    if level >= *threshold {
        return ApplyOutcome::Aborted;
    }
    db.put("inventory", key, Value::Int(level + amount));
    ApplyOutcome::Applied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_moves_funds_when_sufficient() {
        let mut db = Database::new();
        db.put("accounts", "a", Value::Int(100));
        let out = execute(
            &mut db,
            "transfer",
            &["a".into(), "b".into(), Value::Int(40)],
        );
        assert_eq!(out, ApplyOutcome::Applied);
        assert_eq!(db.get("accounts", "a"), Some(&Value::Int(60)));
        assert_eq!(db.get("accounts", "b"), Some(&Value::Int(40)));
    }

    #[test]
    fn transfer_aborts_on_insufficient_funds() {
        let mut db = Database::new();
        db.put("accounts", "a", Value::Int(10));
        let out = execute(
            &mut db,
            "transfer",
            &["a".into(), "b".into(), Value::Int(40)],
        );
        assert_eq!(out, ApplyOutcome::Aborted);
        assert_eq!(db.get("accounts", "a"), Some(&Value::Int(10)));
        assert_eq!(db.get("accounts", "b"), None);
    }

    #[test]
    fn transfer_aborts_on_negative_amount() {
        let mut db = Database::new();
        db.put("accounts", "a", Value::Int(10));
        let out = execute(
            &mut db,
            "transfer",
            &["a".into(), "b".into(), Value::Int(-5)],
        );
        assert_eq!(out, ApplyOutcome::Aborted);
    }

    #[test]
    fn debit_if_sufficient_behaviour() {
        let mut db = Database::new();
        db.put("accounts", "a", Value::Int(50));
        assert_eq!(
            execute(
                &mut db,
                "debit_if_sufficient",
                &["a".into(), Value::Int(20)]
            ),
            ApplyOutcome::Applied
        );
        assert_eq!(db.get("accounts", "a"), Some(&Value::Int(30)));
        assert_eq!(
            execute(
                &mut db,
                "debit_if_sufficient",
                &["a".into(), Value::Int(99)]
            ),
            ApplyOutcome::Aborted
        );
    }

    #[test]
    fn append_history_accumulates() {
        let mut db = Database::new();
        execute(&mut db, "append_history", &["k".into(), "e1".into()]);
        execute(&mut db, "append_history", &["k".into(), "e2".into()]);
        assert_eq!(db.get("history", "k").unwrap().as_text(), Some("e1;e2"));
    }

    #[test]
    fn restock_only_when_low() {
        let mut db = Database::new();
        db.put("inventory", "widget", Value::Int(5));
        assert_eq!(
            execute(
                &mut db,
                "stock_restock_if_low",
                &["widget".into(), Value::Int(10), Value::Int(100)]
            ),
            ApplyOutcome::Applied
        );
        assert_eq!(db.get("inventory", "widget"), Some(&Value::Int(105)));
        assert_eq!(
            execute(
                &mut db,
                "stock_restock_if_low",
                &["widget".into(), Value::Int(10), Value::Int(100)]
            ),
            ApplyOutcome::Aborted
        );
    }

    #[test]
    fn unknown_procedure_aborts() {
        let mut db = Database::new();
        assert_eq!(execute(&mut db, "no_such_proc", &[]), ApplyOutcome::Aborted);
    }

    #[test]
    fn bad_arguments_abort() {
        let mut db = Database::new();
        assert_eq!(
            execute(&mut db, "transfer", &[Value::Int(1)]),
            ApplyOutcome::Aborted
        );
    }

    #[test]
    fn procedures_are_deterministic() {
        let build = || {
            let mut db = Database::new();
            db.put("accounts", "a", Value::Int(100));
            execute(
                &mut db,
                "transfer",
                &["a".into(), "b".into(), Value::Int(7)],
            );
            execute(&mut db, "append_history", &["k".into(), "x".into()]);
            db.digest()
        };
        assert_eq!(build(), build());
    }
}
