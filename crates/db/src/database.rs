//! The deterministic state-machine database.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::op::{Op, Query, QueryResult};
use crate::procs;
use crate::value::Value;

/// A row: its value and, for timestamped updates, the timestamp that
/// last wrote it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Row {
    value: Value,
    ts: Option<u64>,
}

/// Whether an applied operation took effect or deterministically aborted.
///
/// Aborts are not errors: they are a database state transition that every
/// replica computes identically (e.g. an interactive transaction whose
/// read set changed, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApplyOutcome {
    /// The update took effect.
    Applied,
    /// The update deterministically aborted; the database is unchanged.
    Aborted,
}

/// Per-table statistics (see [`Database::table_stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub rows: u64,
}

/// An in-memory, deterministic, snapshot-able database.
///
/// All mutation goes through [`Database::apply`], which is a pure function
/// of `(current state, op)` — the state-machine property the replication
/// engine relies on. Two databases that applied the same op sequence from
/// the same initial state have equal [`Database::digest`]s.
///
/// ```
/// use todr_db::{Database, Op, Value};
///
/// let mut a = Database::new();
/// let mut b = Database::new();
/// for db in [&mut a, &mut b] {
///     db.apply(&Op::put("t", "k", Value::Int(1)));
///     db.apply(&Op::incr("t", "k", 5));
/// }
/// assert_eq!(a.digest(), b.digest());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, BTreeMap<String, Row>>,
    applied: u64,
    aborted: u64,
    /// Per-row write-version counters keyed by
    /// [`row_fingerprint`](crate::keys::row_fingerprint). Bumped on
    /// every applied write that touches the row (including deletes and
    /// losing LWW puts), never reset, and deliberately excluded from
    /// [`Database::digest`] — they are observability for the
    /// linearizable-read oracle, not replicated content. Deterministic
    /// in the op sequence, so they ride snapshots consistently.
    versions: BTreeMap<u64, u64>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Applies an update operation; deterministic in state and op.
    pub fn apply(&mut self, op: &Op) -> ApplyOutcome {
        let outcome = self.apply_inner(op);
        match outcome {
            ApplyOutcome::Applied => self.applied += 1,
            ApplyOutcome::Aborted => self.aborted += 1,
        }
        outcome
    }

    fn apply_inner(&mut self, op: &Op) -> ApplyOutcome {
        match op {
            Op::Put { table, key, value } => {
                self.put(table, key, value.clone());
                ApplyOutcome::Applied
            }
            Op::Delete { table, key } => {
                if let Some(t) = self.tables.get_mut(table) {
                    t.remove(key);
                    if t.is_empty() {
                        self.tables.remove(table);
                    }
                }
                self.bump_version(table, key);
                ApplyOutcome::Applied
            }
            Op::Incr { table, key, delta } => {
                let row = self
                    .tables
                    .entry(table.clone())
                    .or_default()
                    .entry(key.clone())
                    .or_insert(Row {
                        value: Value::Int(0),
                        ts: None,
                    });
                let current = row.value.as_int().unwrap_or(0);
                row.value = Value::Int(current.wrapping_add(*delta));
                self.bump_version(table, key);
                ApplyOutcome::Applied
            }
            Op::TsPut {
                table,
                key,
                value,
                ts,
            } => {
                let row = self
                    .tables
                    .entry(table.clone())
                    .or_default()
                    .entry(key.clone())
                    .or_insert(Row {
                        value: Value::Null,
                        ts: None,
                    });
                if row.ts.is_none_or(|old| *ts > old) {
                    row.value = value.clone();
                    row.ts = Some(*ts);
                } else {
                    // An older timestamp loses; the action still
                    // "applies" in the sense that replicas converge.
                }
                self.bump_version(table, key);
                ApplyOutcome::Applied
            }
            Op::Proc { name, args } => procs::execute(self, name, args),
            Op::Checked { expect, then } => {
                for (table, key, expected) in expect {
                    let current = self.get(table, key);
                    if current != expected.as_ref() {
                        return ApplyOutcome::Aborted;
                    }
                }
                for op in then {
                    if self.apply_inner(op) == ApplyOutcome::Aborted {
                        return ApplyOutcome::Aborted;
                    }
                }
                ApplyOutcome::Applied
            }
            Op::Batch(ops) => {
                for op in ops {
                    if self.apply_inner(op) == ApplyOutcome::Aborted {
                        return ApplyOutcome::Aborted;
                    }
                }
                ApplyOutcome::Applied
            }
            Op::Noop => ApplyOutcome::Applied,
        }
    }

    /// Evaluates a query against the current state.
    pub fn query(&self, q: &Query) -> QueryResult {
        match q {
            Query::Get { table, key } => QueryResult::Value(self.get(table, key).cloned()),
            Query::Scan { table, prefix } => {
                let rows = self
                    .tables
                    .get(table)
                    .map(|t| {
                        t.range(prefix.clone()..)
                            .take_while(|(k, _)| k.starts_with(prefix.as_str()))
                            .map(|(k, row)| (k.clone(), row.value.clone()))
                            .collect()
                    })
                    .unwrap_or_default();
                QueryResult::Rows(rows)
            }
            Query::Count { table } => {
                QueryResult::Count(self.tables.get(table).map(|t| t.len() as u64).unwrap_or(0))
            }
            Query::Digest => QueryResult::Digest(self.digest()),
        }
    }

    /// Direct read of a cell (used by stored procedures and tests).
    pub fn get(&self, table: &str, key: &str) -> Option<&Value> {
        self.tables.get(table)?.get(key).map(|r| &r.value)
    }

    /// Direct write of a cell (used by stored procedures).
    pub fn put(&mut self, table: &str, key: &str, value: Value) {
        self.tables
            .entry(table.to_string())
            .or_default()
            .insert(key.to_string(), Row { value, ts: None });
        self.bump_version(table, key);
    }

    fn bump_version(&mut self, table: &str, key: &str) {
        let fp = crate::keys::row_fingerprint(table, key);
        *self.versions.entry(fp).or_insert(0) += 1;
    }

    /// The write-version of a row: how many applied writes have touched
    /// `(table, key)` in this database's history (deletes and losing
    /// LWW puts included; never reset). Used by the linearizable-read
    /// oracle to detect stale reads — a linearizable read must observe
    /// a version at least as large as the number of acknowledged writes
    /// to the row at the time the read was served.
    pub fn row_version(&self, table: &str, key: &str) -> u64 {
        self.versions
            .get(&crate::keys::row_fingerprint(table, key))
            .copied()
            .unwrap_or(0)
    }

    /// A 64-bit FNV-1a digest of the full content (tables, keys, values,
    /// timestamps). Equal digests mean equal states for all practical
    /// test purposes.
    pub fn digest(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100000001b3);
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for (table, rows) in &self.tables {
            eat(&mut h, table.as_bytes());
            eat(&mut h, &[0xfe]);
            for (key, row) in rows {
                eat(&mut h, key.as_bytes());
                eat(&mut h, &[0xff]);
                row.value.digest_into(&mut h);
                if let Some(ts) = row.ts {
                    eat(&mut h, &ts.to_le_bytes());
                }
            }
        }
        h
    }

    /// Number of successfully applied ops (excludes aborts).
    pub fn applied_count(&self) -> u64 {
        self.applied
    }

    /// Number of deterministically aborted ops.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }

    /// Total number of rows across all tables.
    pub fn row_count(&self) -> u64 {
        self.tables.values().map(|t| t.len() as u64).sum()
    }

    /// Per-table statistics, in table-name order.
    pub fn table_stats(&self) -> Vec<TableStats> {
        self.tables
            .iter()
            .map(|(name, rows)| TableStats {
                name: name.clone(),
                rows: rows.len() as u64,
            })
            .collect()
    }

    /// A deep snapshot for state transfer to a joining replica. (In the
    /// simulation the snapshot is a clone; a production engine would
    /// stream it.)
    pub fn snapshot(&self) -> Database {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_cycle() {
        let mut db = Database::new();
        assert_eq!(db.apply(&Op::put("t", "k", 1i64)), ApplyOutcome::Applied);
        assert_eq!(db.get("t", "k"), Some(&Value::Int(1)));
        db.apply(&Op::delete("t", "k"));
        assert_eq!(db.get("t", "k"), None);
        assert_eq!(db.row_count(), 0);
    }

    #[test]
    fn incr_from_missing_row_starts_at_zero() {
        let mut db = Database::new();
        db.apply(&Op::incr("t", "k", 5));
        db.apply(&Op::incr("t", "k", -2));
        assert_eq!(db.get("t", "k"), Some(&Value::Int(3)));
    }

    #[test]
    fn incr_order_independence() {
        // The commutative class: any order converges.
        let deltas = [5i64, -3, 10, 7, -1];
        let mut forward = Database::new();
        let mut backward = Database::new();
        for d in deltas {
            forward.apply(&Op::incr("t", "k", d));
        }
        for d in deltas.iter().rev() {
            backward.apply(&Op::incr("t", "k", *d));
        }
        assert_eq!(forward.digest(), backward.digest());
    }

    #[test]
    fn ts_put_last_writer_wins_regardless_of_order() {
        let mut early_first = Database::new();
        early_first.apply(&Op::ts_put("t", "k", "old", 1));
        early_first.apply(&Op::ts_put("t", "k", "new", 2));
        let mut late_first = Database::new();
        late_first.apply(&Op::ts_put("t", "k", "new", 2));
        late_first.apply(&Op::ts_put("t", "k", "old", 1));
        assert_eq!(early_first.digest(), late_first.digest());
        assert_eq!(early_first.get("t", "k").unwrap().as_text(), Some("new"));
    }

    #[test]
    fn ts_put_equal_timestamp_keeps_existing() {
        let mut db = Database::new();
        db.apply(&Op::ts_put("t", "k", "first", 5));
        db.apply(&Op::ts_put("t", "k", "second", 5));
        assert_eq!(db.get("t", "k").unwrap().as_text(), Some("first"));
    }

    #[test]
    fn checked_applies_when_expectation_holds() {
        let mut db = Database::new();
        db.apply(&Op::put("t", "k", 10i64));
        let op = Op::Checked {
            expect: vec![("t".into(), "k".into(), Some(Value::Int(10)))],
            then: vec![Op::put("t", "k", 20i64)],
        };
        assert_eq!(db.apply(&op), ApplyOutcome::Applied);
        assert_eq!(db.get("t", "k"), Some(&Value::Int(20)));
    }

    #[test]
    fn checked_aborts_when_read_set_changed() {
        let mut db = Database::new();
        db.apply(&Op::put("t", "k", 11i64)); // changed since the read
        let op = Op::Checked {
            expect: vec![("t".into(), "k".into(), Some(Value::Int(10)))],
            then: vec![Op::put("t", "k", 20i64)],
        };
        assert_eq!(db.apply(&op), ApplyOutcome::Aborted);
        assert_eq!(db.get("t", "k"), Some(&Value::Int(11)));
        assert_eq!(db.aborted_count(), 1);
    }

    #[test]
    fn checked_expectation_of_absence() {
        let mut db = Database::new();
        let op = Op::Checked {
            expect: vec![("t".into(), "k".into(), None)],
            then: vec![Op::put("t", "k", 1i64)],
        };
        assert_eq!(db.apply(&op), ApplyOutcome::Applied);
    }

    #[test]
    fn batch_applies_in_order() {
        let mut db = Database::new();
        db.apply(&Op::Batch(vec![
            Op::put("t", "k", 1i64),
            Op::incr("t", "k", 10),
        ]));
        assert_eq!(db.get("t", "k"), Some(&Value::Int(11)));
    }

    #[test]
    fn scan_respects_prefix_and_order() {
        let mut db = Database::new();
        for k in ["a1", "a2", "b1", "a3"] {
            db.apply(&Op::put("t", k, k));
        }
        let QueryResult::Rows(rows) = db.query(&Query::scan("t", "a")) else {
            panic!("expected rows");
        };
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a1", "a2", "a3"]);
    }

    #[test]
    fn scan_missing_table_is_empty() {
        let db = Database::new();
        assert_eq!(
            db.query(&Query::scan("none", "")),
            QueryResult::Rows(vec![])
        );
    }

    #[test]
    fn count_and_digest_queries() {
        let mut db = Database::new();
        db.apply(&Op::put("t", "a", 1i64));
        db.apply(&Op::put("t", "b", 2i64));
        assert_eq!(
            db.query(&Query::Count { table: "t".into() }),
            QueryResult::Count(2)
        );
        assert_eq!(db.query(&Query::Digest), QueryResult::Digest(db.digest()));
    }

    #[test]
    fn digest_sensitive_to_any_change() {
        let mut db = Database::new();
        db.apply(&Op::put("t", "k", 1i64));
        let d1 = db.digest();
        db.apply(&Op::put("t", "k", 2i64));
        let d2 = db.digest();
        db.apply(&Op::put("t2", "k", 1i64));
        let d3 = db.digest();
        assert_ne!(d1, d2);
        assert_ne!(d2, d3);
    }

    #[test]
    fn same_op_sequence_gives_same_digest() {
        let ops = vec![
            Op::put("a", "x", 1i64),
            Op::incr("a", "x", 4),
            Op::proc("append_history", vec!["k".into(), "e".into()]),
            Op::delete("a", "x"),
        ];
        let mut d1 = Database::new();
        let mut d2 = Database::new();
        for op in &ops {
            d1.apply(op);
            d2.apply(op);
        }
        assert_eq!(d1.digest(), d2.digest());
        assert_eq!(d1, d2);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut db = Database::new();
        db.apply(&Op::put("t", "k", 1i64));
        let snap = db.snapshot();
        db.apply(&Op::put("t", "k", 2i64));
        assert_eq!(snap.get("t", "k"), Some(&Value::Int(1)));
        assert_eq!(db.get("t", "k"), Some(&Value::Int(2)));
    }

    #[test]
    fn noop_applies_without_changes() {
        let mut db = Database::new();
        let d = db.digest();
        assert_eq!(db.apply(&Op::Noop), ApplyOutcome::Applied);
        assert_eq!(db.digest(), d);
    }

    #[test]
    fn table_stats_reports_rows() {
        let mut db = Database::new();
        db.apply(&Op::put("t1", "a", 1i64));
        db.apply(&Op::put("t1", "b", 1i64));
        db.apply(&Op::put("t2", "a", 1i64));
        let stats = db.table_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "t1");
        assert_eq!(stats[0].rows, 2);
    }

    #[test]
    fn row_versions_count_applied_writes() {
        let mut db = Database::new();
        assert_eq!(db.row_version("t", "k"), 0);
        db.apply(&Op::put("t", "k", 1i64));
        db.apply(&Op::incr("t", "k", 1));
        assert_eq!(db.row_version("t", "k"), 2);
        // Deletes and losing LWW puts still advance the version.
        db.apply(&Op::delete("t", "k"));
        assert_eq!(db.row_version("t", "k"), 3);
        db.apply(&Op::ts_put("t", "k", "a", 5));
        db.apply(&Op::ts_put("t", "k", "stale", 4));
        assert_eq!(db.row_version("t", "k"), 5);
        // Aborted interactive transactions write nothing.
        db.apply(&Op::Checked {
            expect: vec![("t".into(), "k".into(), None)],
            then: vec![Op::put("t", "k", 9i64)],
        });
        assert_eq!(db.row_version("t", "k"), 5);
        // Stored-procedure writes flow through `put` and are counted.
        db.apply(&Op::proc("append_history", vec!["k".into(), "e".into()]));
        assert!(db.row_version("history", "k") >= 1);
    }

    #[test]
    fn versions_do_not_affect_digest() {
        let mut a = Database::new();
        a.apply(&Op::put("t", "k", 1i64));
        let d = a.digest();
        a.apply(&Op::delete("t", "x"));
        // Deleting a missing row changes versions but not content.
        assert_eq!(a.digest(), d);
        let b = Database::new();
        let mut c = Database::new();
        c.apply(&Op::delete("t", "x"));
        assert_eq!(b.digest(), c.digest());
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        // Snapshot transfer for joining replicas goes through serde.
        let mut db = Database::new();
        db.apply(&Op::put("t", "k", "v"));
        db.apply(&Op::ts_put("t", "ts", 9i64, 4));
        // Round-trip through the storage codec used elsewhere in the
        // workspace is covered in integration tests; here use the serde
        // data model directly via clone-equality.
        let snap = db.snapshot();
        assert_eq!(snap, db);
    }
}
