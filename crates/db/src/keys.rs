//! Key→shard extraction: the deterministic partition of the key space
//! and the read/write-set analysis a sharding router needs to classify
//! an action as single-shard or cross-shard.
//!
//! The partition is a pure function of `(table, key)` bytes — no
//! placement table, no coordination — so every router instance, every
//! replica and every offline checker agrees on where a row lives. Ops
//! whose row set cannot be determined statically ([`Op::Proc`] reads
//! and writes arbitrary rows at ordering time; [`Query::Digest`] /
//! [`Query::Count`] / [`Query::Scan`] read whole tables) report
//! [`Footprint::All`] and are treated as touching every shard.

use std::collections::BTreeSet;

use crate::op::{Op, Query};

/// FNV-1a over the row coordinates. Stable across platforms and
/// process runs; *not* a randomized hash on purpose — the shard map is
/// part of the replicated protocol state.
fn row_hash(table: &str, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in table.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= 0xff; // separator outside the UTF-8 range: "ab"+"c" ≠ "a"+"bc"
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable 64-bit fingerprint of row `(table, key)` — the same hash
/// the shard map uses. Footprints are exported (metrics events, the
/// todr-check conflict oracle) as sets of these fingerprints rather
/// than row strings, which keeps events small and comparison cheap.
pub fn row_fingerprint(table: &str, key: &str) -> u64 {
    row_hash(table, key)
}

/// The shard that owns row `(table, key)` out of `shards` total.
///
/// # Panics
///
/// Panics if `shards` is 0 — an empty partition owns nothing.
pub fn shard_of(table: &str, key: &str, shards: u32) -> u32 {
    assert!(shards > 0, "shard count must be positive");
    (row_hash(table, key) % u64::from(shards)) as u32
}

/// The set of rows an op or query touches, when statically known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// Exactly these `(table, key)` rows.
    Rows(BTreeSet<(String, String)>),
    /// Statically unbounded (stored procedures, table scans, digests).
    All,
}

impl Footprint {
    /// The empty footprint.
    pub fn empty() -> Self {
        Footprint::Rows(BTreeSet::new())
    }

    fn add(&mut self, table: &str, key: &str) {
        if let Footprint::Rows(rows) = self {
            rows.insert((table.to_string(), key.to_string()));
        }
    }

    /// Folds `other` into `self`.
    pub fn union(&mut self, other: Footprint) {
        match (&mut *self, other) {
            (Footprint::All, _) => {}
            (_, Footprint::All) => *self = Footprint::All,
            (Footprint::Rows(a), Footprint::Rows(b)) => a.extend(b),
        }
    }

    /// Whether no rows are touched.
    pub fn is_empty(&self) -> bool {
        matches!(self, Footprint::Rows(rows) if rows.is_empty())
    }

    /// Whether the two footprints share at least one row.
    /// [`Footprint::All`] intersects anything non-empty (and another
    /// `All`); an empty footprint intersects nothing.
    pub fn intersects(&self, other: &Footprint) -> bool {
        match (self, other) {
            (Footprint::Rows(a), Footprint::Rows(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small.iter().any(|row| large.contains(row))
            }
            (Footprint::All, bounded) | (bounded, Footprint::All) => !bounded.is_empty(),
        }
    }

    /// The sorted, deduplicated [`row_fingerprint`]s of a bounded
    /// footprint; `None` for [`Footprint::All`].
    pub fn fingerprints(&self) -> Option<Vec<u64>> {
        match self {
            Footprint::All => None,
            Footprint::Rows(rows) => {
                let mut fps: Vec<u64> = rows.iter().map(|(t, k)| row_fingerprint(t, k)).collect();
                fps.sort_unstable();
                fps.dedup();
                Some(fps)
            }
        }
    }

    /// The shards this footprint lands on, in ascending order;
    /// [`Footprint::All`] maps to every shard.
    pub fn shards(&self, shards: u32) -> BTreeSet<u32> {
        match self {
            Footprint::All => (0..shards).collect(),
            Footprint::Rows(rows) => rows.iter().map(|(t, k)| shard_of(t, k, shards)).collect(),
        }
    }
}

/// The rows an update op writes (for [`Op::Checked`], also the rows its
/// `expect` clause *reads* — a replica must host a row to evaluate the
/// expectation, so the router treats guard reads as part of the
/// placement-relevant footprint).
pub fn write_set(op: &Op) -> Footprint {
    let mut fp = Footprint::empty();
    collect_writes(op, &mut fp);
    fp
}

fn collect_writes(op: &Op, fp: &mut Footprint) {
    match op {
        Op::Put { table, key, .. }
        | Op::Delete { table, key }
        | Op::Incr { table, key, .. }
        | Op::TsPut { table, key, .. } => fp.add(table, key),
        Op::Proc { .. } => fp.union(Footprint::All),
        Op::Checked { expect, then } => {
            for (table, key, _) in expect {
                fp.add(table, key);
            }
            for inner in then {
                collect_writes(inner, fp);
            }
        }
        Op::Batch(ops) => {
            for inner in ops {
                collect_writes(inner, fp);
            }
        }
        Op::Noop => {}
    }
}

/// The rows a query reads. Scans, counts and digests are table- or
/// database-wide and report [`Footprint::All`].
pub fn read_set(query: &Query) -> Footprint {
    match query {
        Query::Get { table, key } => {
            let mut fp = Footprint::empty();
            fp.add(table, key);
            fp
        }
        Query::Scan { .. } | Query::Count { .. } | Query::Digest => Footprint::All,
    }
}

/// The combined footprint of one action: the update's write set plus
/// the optional query's read set.
pub fn action_footprint(update: &Op, query: Option<&Query>) -> Footprint {
    let mut fp = write_set(update);
    if let Some(q) = query {
        fp.union(read_set(q));
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_maps_to_exactly_one_shard_in_range() {
        for shards in [1u32, 2, 3, 4, 7, 16] {
            for i in 0..200 {
                let key = format!("k{i}");
                let s = shard_of("bench", &key, shards);
                assert!(s < shards);
                // Same row, same shard — the function is pure.
                assert_eq!(s, shard_of("bench", &key, shards));
            }
        }
    }

    #[test]
    fn table_is_part_of_the_row_coordinates() {
        // ("ab","c") and ("a","bc") must hash differently: the
        // separator keeps table/key concatenation unambiguous.
        assert_ne!(row_hash("ab", "c"), row_hash("a", "bc"));
    }

    #[test]
    fn single_shard_spread_is_roughly_uniform() {
        let shards = 4u32;
        let mut counts = vec![0u32; shards as usize];
        for i in 0..400 {
            counts[shard_of("t", &format!("row-{i}"), shards) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {s} got only {c}/400 rows");
        }
    }

    #[test]
    fn write_sets_cover_each_variant() {
        assert!(write_set(&Op::Noop).is_empty());
        assert_eq!(
            write_set(&Op::put("t", "k", 1i64)),
            write_set(&Op::delete("t", "k"))
        );
        assert_eq!(
            write_set(&Op::Proc {
                name: "x".into(),
                args: vec![]
            }),
            Footprint::All
        );
        let batch = Op::Batch(vec![Op::put("t", "a", 1i64), Op::incr("u", "b", 1)]);
        match write_set(&batch) {
            Footprint::Rows(rows) => {
                assert_eq!(rows.len(), 2);
                assert!(rows.contains(&("t".into(), "a".into())));
                assert!(rows.contains(&("u".into(), "b".into())));
            }
            Footprint::All => panic!("batch of puts has a bounded write set"),
        }
        // Checked: guard reads count toward placement.
        let checked = Op::Checked {
            expect: vec![("g".into(), "guard".into(), None)],
            then: vec![Op::put("t", "a", 1i64)],
        };
        match write_set(&checked) {
            Footprint::Rows(rows) => {
                assert!(rows.contains(&("g".into(), "guard".into())));
                assert!(rows.contains(&("t".into(), "a".into())));
            }
            Footprint::All => panic!("checked op has a bounded footprint"),
        }
    }

    #[test]
    fn read_sets_cover_each_variant() {
        assert!(!read_set(&Query::get("t", "k")).is_empty());
        assert_eq!(read_set(&Query::scan("t", "")), Footprint::All);
        assert_eq!(
            read_set(&Query::Count { table: "t".into() }),
            Footprint::All
        );
        assert_eq!(read_set(&Query::Digest), Footprint::All);
    }

    #[test]
    fn intersects_covers_bounded_and_unbounded_cases() {
        let a = write_set(&Op::put("t", "k", 1i64));
        let b = write_set(&Op::put("t", "k", 2i64));
        let c = write_set(&Op::put("t", "other", 3i64));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(Footprint::All.intersects(&a));
        assert!(Footprint::All.intersects(&Footprint::All));
        // The empty footprint intersects nothing, not even All.
        assert!(!Footprint::empty().intersects(&Footprint::All));
        assert!(!Footprint::empty().intersects(&a));
    }

    #[test]
    fn fingerprints_are_sorted_row_hashes() {
        let fp = write_set(&Op::Batch(vec![
            Op::put("t", "a", 1i64),
            Op::put("t", "b", 2i64),
            Op::put("t", "a", 3i64),
        ]));
        let fps = fp.fingerprints().expect("bounded footprint");
        assert_eq!(fps.len(), 2);
        assert!(fps.windows(2).all(|w| w[0] < w[1]));
        assert!(fps.contains(&row_fingerprint("t", "a")));
        assert_eq!(Footprint::All.fingerprints(), None);
    }

    #[test]
    fn footprint_shards_ascending_and_bounded() {
        let fp = action_footprint(
            &Op::Batch(vec![Op::put("t", "a", 1i64), Op::put("t", "b", 2i64)]),
            Some(&Query::get("t", "c")),
        );
        let shards = fp.shards(4);
        assert!(!shards.is_empty() && shards.len() <= 3);
        assert!(shards.iter().all(|&s| s < 4));
        assert_eq!(Footprint::All.shards(3), (0..3).collect());
    }
}
