//! Conflict / commutativity relation over the action language — the
//! static analysis behind the engine's CURP-style commit fast path
//! (Park & Ousterhout, *Exploiting Commutativity For Practical Fast
//! Replication*, applied to the paper's red/green semantics).
//!
//! Two actions **conflict** when executing them in different orders can
//! produce different database states or different query answers. An
//! action that conflicts with no in-flight action can be acknowledged
//! before its global (green) position is settled: whatever total order
//! the group converges on yields the same state and the same reply. The
//! relation is deliberately conservative — anything statically unclear
//! is declared conflicting:
//!
//! * **write/write** overlap conflicts, unless both sides are fully
//!   commutative ([`Op::Incr`]/[`Op::Noop`]) or both fully timestamped
//!   ([`Op::TsPut`]/[`Op::Noop`]) — those classes are order-insensitive
//!   within themselves (§6 of the paper), but not across classes;
//! * **read/write** overlap (either direction) always conflicts — a
//!   query answer must reflect exactly the actions ordered before it;
//! * [`Footprint::All`] sides (stored procedures, scans, counts,
//!   digests) overlap every non-empty footprint, and an action with any
//!   unbounded side is never *eligible* for the fast path in the first
//!   place ([`ClassDigest::fast_eligible`]).
//!
//! Two equivalent representations are provided: [`ActionClass`] keeps
//! the exact row sets (what the engine's in-flight conflict check
//! uses), and [`ClassDigest`] carries sorted [`row_fingerprint`]s (what
//! the engine exports in metrics events and the todr-check oracle
//! replays). A property test pins them to agree.
//!
//! [`row_fingerprint`]: crate::keys::row_fingerprint

use crate::keys::{read_set, write_set, Footprint};
use crate::op::{Op, Query};

/// The conflict-relevant classification of one action: what it writes,
/// what its query part reads, and which order-insensitive class (if
/// any) its update belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionClass {
    /// Rows the update writes (guard reads of [`Op::Checked`] count as
    /// writes, matching [`write_set`]).
    pub writes: Footprint,
    /// Rows the query part reads (empty when there is no query).
    pub reads: Footprint,
    /// The update consists only of commutative ops.
    pub commutative: bool,
    /// The update consists only of timestamped (last-writer-wins) ops.
    pub timestamped: bool,
}

impl ActionClass {
    /// Whether either side of the footprint is statically unbounded.
    pub fn unbounded(&self) -> bool {
        matches!(self.writes, Footprint::All) || matches!(self.reads, Footprint::All)
    }

    /// The fingerprint form of this class, suitable for export.
    pub fn digest(&self) -> ClassDigest {
        ClassDigest {
            writes: self.writes.fingerprints().unwrap_or_default(),
            writes_unbounded: matches!(self.writes, Footprint::All),
            reads: self.reads.fingerprints().unwrap_or_default(),
            reads_unbounded: matches!(self.reads, Footprint::All),
            commutative: self.commutative,
            timestamped: self.timestamped,
        }
    }
}

/// Classifies one action from its update and optional query part.
pub fn classify(update: &Op, query: Option<&Query>) -> ActionClass {
    ActionClass {
        writes: write_set(update),
        reads: query.map(read_set).unwrap_or_else(Footprint::empty),
        commutative: update.is_commutative(),
        timestamped: update.is_timestamped(),
    }
}

/// Whether two classified actions conflict (see the module docs for the
/// exact relation). Symmetric.
pub fn conflicts(a: &ActionClass, b: &ActionClass) -> bool {
    let order_insensitive = (a.commutative && b.commutative) || (a.timestamped && b.timestamped);
    (a.writes.intersects(&b.writes) && !order_insensitive)
        || a.reads.intersects(&b.writes)
        || a.writes.intersects(&b.reads)
}

/// The fingerprint form of an [`ActionClass`]: row identities replaced
/// by their stable 64-bit hashes. This is what rides in
/// `ProtocolEvent::ActionFootprint` and what the `FastCommitRevoked`
/// oracle evaluates, so the oracle applies *the same relation* the
/// engine applied (up to the astronomically unlikely fingerprint
/// collision, which can only turn a non-conflict into a conflict —
/// conservative for the engine, and flagged by the agreement test
/// below if it ever hits the corpus).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassDigest {
    /// Sorted fingerprints of the written rows (empty when unbounded).
    pub writes: Vec<u64>,
    /// The write side is [`Footprint::All`].
    pub writes_unbounded: bool,
    /// Sorted fingerprints of the read rows (empty when unbounded).
    pub reads: Vec<u64>,
    /// The read side is [`Footprint::All`].
    pub reads_unbounded: bool,
    /// The update consists only of commutative ops.
    pub commutative: bool,
    /// The update consists only of timestamped ops.
    pub timestamped: bool,
}

impl ClassDigest {
    /// Whether an action of this class may use the fast path at all:
    /// both footprint sides must be statically bounded.
    pub fn fast_eligible(&self) -> bool {
        !self.writes_unbounded && !self.reads_unbounded
    }
}

fn overlap(a: &[u64], a_all: bool, b: &[u64], b_all: bool) -> bool {
    match (a_all, b_all) {
        (true, true) => true,
        (true, false) => !b.is_empty(),
        (false, true) => !a.is_empty(),
        (false, false) => {
            // Both sorted: two-pointer sweep.
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }
    }
}

/// [`conflicts`] over the fingerprint representation. Symmetric, and
/// agrees with the exact-row relation (see the property test).
pub fn digests_conflict(a: &ClassDigest, b: &ClassDigest) -> bool {
    let order_insensitive = (a.commutative && b.commutative) || (a.timestamped && b.timestamped);
    (overlap(&a.writes, a.writes_unbounded, &b.writes, b.writes_unbounded) && !order_insensitive)
        || overlap(&a.reads, a.reads_unbounded, &b.writes, b.writes_unbounded)
        || overlap(&a.writes, a.writes_unbounded, &b.reads, b.reads_unbounded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cl(update: &Op) -> ActionClass {
        classify(update, None)
    }

    fn clq(update: &Op, query: &Query) -> ActionClass {
        classify(update, Some(query))
    }

    #[test]
    fn disjoint_writes_commute() {
        let a = cl(&Op::put("t", "a", 1i64));
        let b = cl(&Op::put("t", "b", 2i64));
        assert!(!conflicts(&a, &b));
        assert!(!conflicts(&b, &a));
    }

    #[test]
    fn same_row_blind_writes_conflict() {
        let a = cl(&Op::put("t", "k", 1i64));
        let b = cl(&Op::put("t", "k", 2i64));
        assert!(conflicts(&a, &b));
        let d = cl(&Op::delete("t", "k"));
        assert!(conflicts(&a, &d));
    }

    #[test]
    fn increments_commute_even_on_the_same_row() {
        let a = cl(&Op::incr("t", "k", 1));
        let b = cl(&Op::incr("t", "k", -3));
        assert!(!conflicts(&a, &b));
        // ...but an increment against a plain put does not.
        let p = cl(&Op::put("t", "k", 9i64));
        assert!(conflicts(&a, &p));
        assert!(conflicts(&p, &a));
    }

    #[test]
    fn timestamped_puts_commute_within_their_class_only() {
        let a = cl(&Op::ts_put("t", "k", 1i64, 5));
        let b = cl(&Op::ts_put("t", "k", 2i64, 7));
        assert!(!conflicts(&a, &b));
        let i = cl(&Op::incr("t", "k", 1));
        assert!(conflicts(&a, &i), "LWW and increments do not mix");
    }

    #[test]
    fn reads_conflict_with_overlapping_writes() {
        // Read-your-writes: a query must see exactly the prefix ordered
        // before it, so any overlapping in-flight write conflicts —
        // even a commutative one.
        let reader = clq(&Op::Noop, &Query::get("t", "k"));
        let writer = cl(&Op::incr("t", "k", 1));
        assert!(conflicts(&reader, &writer));
        assert!(conflicts(&writer, &reader));
        let elsewhere = cl(&Op::incr("t", "other", 1));
        assert!(!conflicts(&reader, &elsewhere));
    }

    #[test]
    fn unbounded_sides_conflict_with_any_overlapping_action() {
        let proc = cl(&Op::proc("transfer", vec![]));
        let put = cl(&Op::put("t", "k", 1i64));
        assert!(conflicts(&proc, &put));
        let scan = clq(&Op::Noop, &Query::scan("t", ""));
        assert!(conflicts(&scan, &put));
        // A pure no-op touches nothing: even All finds no overlap.
        let noop = cl(&Op::Noop);
        assert!(!conflicts(&proc, &noop));
        assert!(!conflicts(&scan, &noop));
    }

    #[test]
    fn checked_guard_rows_count_as_writes() {
        let checked = cl(&Op::Checked {
            expect: vec![("g".into(), "guard".into(), None)],
            then: vec![Op::put("t", "x", 1i64)],
        });
        let touches_guard = cl(&Op::put("g", "guard", 2i64));
        assert!(conflicts(&checked, &touches_guard));
    }

    #[test]
    fn eligibility_requires_bounded_footprints() {
        assert!(cl(&Op::put("t", "k", 1i64)).digest().fast_eligible());
        assert!(clq(&Op::incr("t", "k", 1), &Query::get("t", "k"))
            .digest()
            .fast_eligible());
        assert!(!cl(&Op::proc("p", vec![])).digest().fast_eligible());
        assert!(!clq(&Op::Noop, &Query::Digest).digest().fast_eligible());
        assert!(!clq(&Op::Noop, &Query::scan("t", ""))
            .digest()
            .fast_eligible());
    }

    #[test]
    fn digest_relation_agrees_with_exact_relation() {
        // Small structured corpus covering every variant pair.
        let updates = [
            Op::Noop,
            Op::put("t", "a", 1i64),
            Op::put("t", "b", 1i64),
            Op::delete("t", "a"),
            Op::incr("t", "a", 1),
            Op::incr("u", "z", -2),
            Op::ts_put("t", "a", 3i64, 9),
            Op::proc("p", vec![]),
            Op::Batch(vec![Op::incr("t", "a", 1), Op::incr("t", "b", 1)]),
            Op::Checked {
                expect: vec![("t".into(), "a".into(), None)],
                then: vec![Op::put("t", "c", 1i64)],
            },
        ];
        let queries = [
            None,
            Some(Query::get("t", "a")),
            Some(Query::get("x", "y")),
            Some(Query::scan("t", "")),
        ];
        let mut classes = Vec::new();
        for u in &updates {
            for q in &queries {
                classes.push(classify(u, q.as_ref()));
            }
        }
        for a in &classes {
            for b in &classes {
                assert_eq!(
                    conflicts(a, b),
                    digests_conflict(&a.digest(), &b.digest()),
                    "digest relation diverged for {a:?} vs {b:?}"
                );
                assert_eq!(
                    conflicts(a, b),
                    conflicts(b, a),
                    "relation must be symmetric"
                );
            }
        }
    }
}
