//! Update operations (the update part of an action) and queries (the
//! query part).

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The update part of an action: a deterministic database transition.
///
/// The variants map onto the application-semantics classes of §6 of the
/// paper; see the crate docs for the correspondence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Store `value` under `(table, key)`, creating the table/row as
    /// needed.
    Put {
        /// Target table.
        table: String,
        /// Row key.
        key: String,
        /// New value.
        value: Value,
    },
    /// Remove the row `(table, key)` if present.
    Delete {
        /// Target table.
        table: String,
        /// Row key.
        key: String,
    },
    /// Add `delta` to the integer at `(table, key)` (missing rows count
    /// as 0). Increments **commute**, so applications using only `Incr`
    /// can accept the commutative relaxed semantics of §6.
    Incr {
        /// Target table.
        table: String,
        /// Row key.
        key: String,
        /// Signed amount to add.
        delta: i64,
    },
    /// Last-writer-wins put: applied only if `ts` is strictly greater
    /// than the timestamp of the current row (§6 "timestamp update
    /// semantics", e.g. location tracking).
    TsPut {
        /// Target table.
        table: String,
        /// Row key.
        key: String,
        /// New value.
        value: Value,
        /// Application timestamp.
        ts: u64,
    },
    /// An **active** transaction (§6): invoke the named deterministic
    /// stored procedure *at ordering time*. The procedure sees the
    /// current database state; see [`procs`](crate::procs) for the
    /// registry.
    Proc {
        /// Registered procedure name.
        name: String,
        /// Procedure arguments.
        args: Vec<Value>,
    },
    /// The second half of an **interactive** transaction (§6): apply
    /// `then` only if every `(table, key)` listed in `expect` still holds
    /// the recorded value; otherwise the action aborts — identically at
    /// every replica, since all replicas evaluate the same rule on the
    /// same state.
    Checked {
        /// Values the first (read) action observed.
        expect: Vec<(String, String, Option<Value>)>,
        /// Updates to apply if the expectation holds.
        then: Vec<Op>,
    },
    /// Several updates applied atomically in order.
    Batch(Vec<Op>),
    /// No update part (query-only action).
    Noop,
}

impl Op {
    /// Convenience constructor for [`Op::Put`].
    pub fn put(table: impl Into<String>, key: impl Into<String>, value: impl Into<Value>) -> Self {
        Op::Put {
            table: table.into(),
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`Op::Delete`].
    pub fn delete(table: impl Into<String>, key: impl Into<String>) -> Self {
        Op::Delete {
            table: table.into(),
            key: key.into(),
        }
    }

    /// Convenience constructor for [`Op::Incr`].
    pub fn incr(table: impl Into<String>, key: impl Into<String>, delta: i64) -> Self {
        Op::Incr {
            table: table.into(),
            key: key.into(),
            delta,
        }
    }

    /// Convenience constructor for [`Op::TsPut`].
    pub fn ts_put(
        table: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<Value>,
        ts: u64,
    ) -> Self {
        Op::TsPut {
            table: table.into(),
            key: key.into(),
            value: value.into(),
            ts,
        }
    }

    /// Convenience constructor for [`Op::Proc`].
    pub fn proc(name: impl Into<String>, args: Vec<Value>) -> Self {
        Op::Proc {
            name: name.into(),
            args,
        }
    }

    /// Whether this op (recursively) consists only of commutative
    /// updates ([`Op::Incr`] / [`Op::Noop`]); such actions are safe under
    /// the commutative relaxed semantics of §6.
    pub fn is_commutative(&self) -> bool {
        match self {
            Op::Incr { .. } | Op::Noop => true,
            Op::Batch(ops) => ops.iter().all(Op::is_commutative),
            _ => false,
        }
    }

    /// Whether this op (recursively) consists only of timestamped
    /// updates ([`Op::TsPut`] / [`Op::Noop`]); such actions converge
    /// under the timestamp relaxed semantics of §6.
    pub fn is_timestamped(&self) -> bool {
        match self {
            Op::TsPut { .. } | Op::Noop => true,
            Op::Batch(ops) => ops.iter().all(Op::is_timestamped),
            _ => false,
        }
    }
}

/// The consistency tier a client requests for a read.
///
/// The engine's red/green machinery (DESIGN.md §4) naturally yields
/// three read tiers of decreasing strength and cost:
///
/// * [`Linearizable`](ReadConsistency::Linearizable) — the read is
///   ordered with respect to every acknowledged write. Served locally
///   from the green database when the replica holds a valid read lease
///   (parking behind any receipted-but-not-yet-green conflicting
///   write); otherwise it falls back to the ordered action path.
/// * [`GreenSnapshot`](ReadConsistency::GreenSnapshot) — a consistent
///   snapshot of the green prefix: every replica serving this tier
///   answers from *some* prefix of the single agreed total order.
///   Local, lease-free, may lag acknowledged writes.
/// * [`RedOverlay`](ReadConsistency::RedOverlay) — the green prefix
///   with the replica's local red suffix replayed on top: fresher than
///   `GreenSnapshot`, but the red suffix may still be reordered or
///   (in a minority component) superseded before turning green.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadConsistency {
    /// Ordered against all acknowledged writes (lease-local or ordered).
    Linearizable,
    /// A consistent green-prefix snapshot; may lag acknowledged writes.
    GreenSnapshot,
    /// Green prefix plus the local red suffix; freshest local view.
    RedOverlay,
}

/// The query part of an action: a read against the database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// Read the value at `(table, key)`.
    Get {
        /// Target table.
        table: String,
        /// Row key.
        key: String,
    },
    /// Read all rows of `table` whose key starts with `prefix`, in key
    /// order.
    Scan {
        /// Target table.
        table: String,
        /// Key prefix ("" scans the whole table).
        prefix: String,
    },
    /// Count the rows in `table`.
    Count {
        /// Target table.
        table: String,
    },
    /// The whole-database content digest.
    Digest,
}

impl Query {
    /// Convenience constructor for [`Query::Get`].
    pub fn get(table: impl Into<String>, key: impl Into<String>) -> Self {
        Query::Get {
            table: table.into(),
            key: key.into(),
        }
    }

    /// Convenience constructor for [`Query::Scan`].
    pub fn scan(table: impl Into<String>, prefix: impl Into<String>) -> Self {
        Query::Scan {
            table: table.into(),
            prefix: prefix.into(),
        }
    }
}

/// The result of a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Result of [`Query::Get`].
    Value(Option<Value>),
    /// Result of [`Query::Scan`]: `(key, value)` pairs in key order.
    Rows(Vec<(String, Value)>),
    /// Result of [`Query::Count`].
    Count(u64),
    /// Result of [`Query::Digest`].
    Digest(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        assert_eq!(
            Op::put("t", "k", 1i64),
            Op::Put {
                table: "t".into(),
                key: "k".into(),
                value: Value::Int(1)
            }
        );
        assert_eq!(
            Op::incr("t", "k", -2),
            Op::Incr {
                table: "t".into(),
                key: "k".into(),
                delta: -2
            }
        );
        assert_eq!(
            Query::get("t", "k"),
            Query::Get {
                table: "t".into(),
                key: "k".into()
            }
        );
    }

    #[test]
    fn commutativity_classification() {
        assert!(Op::incr("t", "k", 1).is_commutative());
        assert!(Op::Noop.is_commutative());
        assert!(!Op::put("t", "k", 1i64).is_commutative());
        assert!(Op::Batch(vec![Op::incr("t", "a", 1), Op::incr("t", "b", 2)]).is_commutative());
        assert!(!Op::Batch(vec![Op::incr("t", "a", 1), Op::put("t", "b", 2i64)]).is_commutative());
    }

    #[test]
    fn timestamp_classification() {
        assert!(Op::ts_put("t", "k", 1i64, 5).is_timestamped());
        assert!(!Op::put("t", "k", 1i64).is_timestamped());
        assert!(Op::Batch(vec![Op::ts_put("t", "a", 1i64, 1)]).is_timestamped());
    }
}
