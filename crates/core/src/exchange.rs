//! The action-exchange plan computed from the State messages of an
//! exchange round.
//!
//! When a new configuration's members have all shared their State
//! messages, every server deterministically computes the same
//! [`RetransPlan`]: which member retransmits the green suffix (the
//! most-updated server) and which member retransmits each creator's
//! missing red actions. Retransmissions flow through the group
//! communication layer, so all members receive them in one agreed order;
//! each planned sender finishes with a `RetransDone` marker, and the
//! round completes when every marker arrived.
//!
//! Facts that keep the plan small and duplicate-free:
//!
//! * green prefixes are consistent across servers (Global Total Order),
//!   so one sender covers everyone by sending positions
//!   `(min green, max green]`;
//! * an action that is green at its red-range holder is *provably*
//!   covered by the green path (a member lacking it must have a green
//!   line below its position), so red holders transmit only actions that
//!   are red at them;
//! * a server that inherited a database snapshot (an online-joined
//!   replica, §5.1) lacks green *bodies* below its `green_floor`; if no
//!   most-updated member can serve the whole needed range from bodies,
//!   the plan falls back to a **green-state snapshot** over the group —
//!   the receivers "inherit a database state which incorporated the
//!   effect of these actions", exactly the clause Theorem 2 (Global FIFO
//!   Order, dynamic) admits.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use todr_net::NodeId;

/// The exchange-relevant part of one member's State message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberProgress {
    /// The reporting server.
    pub server: NodeId,
    /// Number of actions it has marked green.
    pub green_count: u64,
    /// Lowest green position it still holds a body for (`0` unless the
    /// server bootstrapped from a snapshot).
    pub green_floor: u64,
    /// Its `redCut`: per creator, the highest contiguous action index it
    /// holds.
    pub red_cut: BTreeMap<NodeId, u64>,
}

/// How the green suffix is brought to everyone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreenPath {
    /// Nothing to do: all members share the same green line.
    None,
    /// `(sender, from_pos, to_pos)`: the sender retransmits green
    /// positions `from_pos..to_pos` (0-based, half-open).
    Retrans(NodeId, u64, u64),
    /// No eligible sender holds all needed bodies: `sender` transfers
    /// its green database state (plus bookkeeping) instead.
    Snapshot(NodeId),
}

/// Who must retransmit what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetransPlan {
    /// Green suffix transfer.
    pub green: GreenPath,
    /// Per creator with divergent red cuts: `(sender, creator,
    /// from_index, to_index)` — indices are 1-based and inclusive, like
    /// action ids. Senders transmit only the actions in range that are
    /// red at them (green ones are covered by the green path).
    pub red: Vec<(NodeId, NodeId, u64, u64)>,
    /// Every server that must send a `RetransDone` marker.
    pub senders: BTreeSet<NodeId>,
}

impl Default for RetransPlan {
    fn default() -> Self {
        RetransPlan {
            green: GreenPath::None,
            red: Vec::new(),
            senders: BTreeSet::new(),
        }
    }
}

impl RetransPlan {
    /// Whether nothing needs to be exchanged.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }
}

/// Computes the deterministic retransmission plan. Every member runs
/// this on identical inputs (the full set of State messages) and obtains
/// the identical plan.
pub fn retrans_plan(states: &[MemberProgress]) -> RetransPlan {
    assert!(!states.is_empty(), "retrans plan needs >= 1 member");
    let mut plan = RetransPlan::default();

    // Green suffix: a most-updated member (ties -> smallest id) brings
    // everyone up to the maximum green line, provided it still holds the
    // bodies; otherwise it transfers its green state.
    let min_green = states
        .iter()
        .map(|s| s.green_count)
        .min()
        .expect("asserted non-empty above");
    let max_green = states
        .iter()
        .map(|s| s.green_count)
        .max()
        .expect("asserted non-empty above");
    if max_green > min_green {
        let eligible = states
            .iter()
            .filter(|s| s.green_count == max_green && s.green_floor <= min_green)
            .map(|s| s.server)
            .min();
        let sender = match eligible {
            Some(sender) => {
                plan.green = GreenPath::Retrans(sender, min_green, max_green);
                sender
            }
            None => {
                let sender = states
                    .iter()
                    .filter(|s| s.green_count == max_green)
                    .map(|s| s.server)
                    .min()
                    .expect("some member attains the maximum green count");
                plan.green = GreenPath::Snapshot(sender);
                sender
            }
        };
        plan.senders.insert(sender);
    }

    // Red ranges per creator.
    let creators: BTreeSet<NodeId> = states
        .iter()
        .flat_map(|s| s.red_cut.keys().copied())
        .collect();
    for creator in creators {
        let cut = |s: &MemberProgress| s.red_cut.get(&creator).copied().unwrap_or(0);
        let min_cut = states
            .iter()
            .map(cut)
            .min()
            .expect("asserted non-empty above");
        let max_cut = states
            .iter()
            .map(cut)
            .max()
            .expect("asserted non-empty above");
        if max_cut > min_cut {
            let sender = states
                .iter()
                .filter(|s| cut(s) == max_cut)
                .map(|s| s.server)
                .min()
                .expect("some member attains the maximum red cut");
            plan.red.push((sender, creator, min_cut + 1, max_cut));
            plan.senders.insert(sender);
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn member(server: u32, green: u64, cuts: &[(u32, u64)]) -> MemberProgress {
        MemberProgress {
            server: n(server),
            green_count: green,
            green_floor: 0,
            red_cut: cuts.iter().map(|&(s, c)| (n(s), c)).collect(),
        }
    }

    #[test]
    fn identical_states_need_no_exchange() {
        let states = vec![
            member(0, 5, &[(0, 3), (1, 2)]),
            member(1, 5, &[(0, 3), (1, 2)]),
        ];
        let plan = retrans_plan(&states);
        assert!(plan.is_empty());
        assert_eq!(plan.green, GreenPath::None);
        assert!(plan.red.is_empty());
    }

    #[test]
    fn most_green_member_sends_suffix() {
        let states = vec![member(0, 3, &[]), member(1, 7, &[]), member(2, 5, &[])];
        let plan = retrans_plan(&states);
        assert_eq!(plan.green, GreenPath::Retrans(n(1), 3, 7));
        assert_eq!(plan.senders, [n(1)].into_iter().collect());
    }

    #[test]
    fn green_ties_resolve_to_smallest_id() {
        let states = vec![member(2, 7, &[]), member(1, 7, &[]), member(0, 3, &[])];
        let plan = retrans_plan(&states);
        assert_eq!(plan.green, GreenPath::Retrans(n(1), 3, 7));
    }

    #[test]
    fn red_ranges_are_per_creator() {
        let states = vec![
            member(0, 2, &[(0, 5), (1, 1)]),
            member(1, 2, &[(0, 2), (1, 4)]),
        ];
        let plan = retrans_plan(&states);
        assert_eq!(plan.green, GreenPath::None);
        assert_eq!(plan.red, vec![(n(0), n(0), 3, 5), (n(1), n(1), 2, 4)]);
        assert_eq!(plan.senders, [n(0), n(1)].into_iter().collect());
    }

    #[test]
    fn missing_red_cut_entries_count_as_zero() {
        // Member 1 has never heard of creator 2.
        let states = vec![member(0, 0, &[(2, 4)]), member(1, 0, &[])];
        let plan = retrans_plan(&states);
        assert_eq!(plan.red, vec![(n(0), n(2), 1, 4)]);
    }

    #[test]
    fn plan_is_identical_regardless_of_input_order() {
        let a = vec![
            member(0, 3, &[(0, 5)]),
            member(1, 7, &[(0, 2)]),
            member(2, 5, &[(0, 9)]),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(retrans_plan(&a), retrans_plan(&b));
    }

    #[test]
    fn same_server_can_send_green_and_red() {
        let states = vec![
            member(0, 9, &[(0, 9), (1, 3)]),
            member(1, 4, &[(0, 4), (1, 3)]),
        ];
        let plan = retrans_plan(&states);
        assert_eq!(plan.green, GreenPath::Retrans(n(0), 4, 9));
        assert_eq!(plan.red, vec![(n(0), n(0), 5, 9)]);
        assert_eq!(plan.senders.len(), 1);
    }

    #[test]
    fn snapshot_fallback_when_sender_lacks_bodies() {
        // The most-updated member joined online at green position 800:
        // it cannot serve a member stuck at 500 from bodies.
        let joiner = MemberProgress {
            server: n(9),
            green_count: 1000,
            green_floor: 800,
            red_cut: BTreeMap::new(),
        };
        let laggard = member(1, 500, &[]);
        let plan = retrans_plan(&[joiner, laggard]);
        assert_eq!(plan.green, GreenPath::Snapshot(n(9)));
        assert_eq!(plan.senders, [n(9)].into_iter().collect());
    }

    #[test]
    fn floor_below_min_green_is_harmless() {
        let joiner = MemberProgress {
            server: n(9),
            green_count: 1000,
            green_floor: 800,
            red_cut: BTreeMap::new(),
        };
        // The laggard is above the joiner's floor: bodies suffice.
        let laggard = member(1, 900, &[]);
        let plan = retrans_plan(&[joiner, laggard]);
        assert_eq!(plan.green, GreenPath::Retrans(n(9), 900, 1000));
    }

    #[test]
    fn another_full_member_preferred_over_snapshot() {
        let joiner = MemberProgress {
            server: n(0),
            green_count: 1000,
            green_floor: 800,
            red_cut: BTreeMap::new(),
        };
        let full = member(1, 1000, &[]); // floor 0, same green line
        let laggard = member(2, 500, &[]);
        let plan = retrans_plan(&[joiner, full, laggard]);
        assert_eq!(plan.green, GreenPath::Retrans(n(1), 500, 1000));
    }
}
