//! Actions: the unit of replication.

use std::fmt;

use serde::{Deserialize, Serialize};
use todr_db::{Op, Query};
use todr_net::NodeId;

/// Identifier of a client, unique within the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique action identifier: the creating server plus that
/// server's action counter (`actionIndex` in the paper). Per-creator
/// indices are contiguous, which is what the `redCut` FIFO check relies
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId {
    /// The server that created (stamped) the action.
    pub server: NodeId,
    /// The creator's action counter value (1-based).
    pub index: u64,
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.server, self.index)
    }
}

/// What an action does when it reaches the global order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// A client transaction: an optional query part and an update part
    /// (either may be trivial), per §2.2 of the paper.
    App {
        /// The query part, answered at the origin server when the action
        /// is applied.
        query: Option<Query>,
        /// The update part, applied at every server.
        update: Op,
    },
    /// `PERSISTENT_JOIN` (§5.1): announces a new replica. When this
    /// action turns green, every server extends its membership
    /// structures; the representative (the action's creator) starts the
    /// database transfer.
    PersistentJoin {
        /// The joining server.
        joiner: NodeId,
    },
    /// `PERSISTENT_LEAVE` (§5.1): permanently removes a replica (either
    /// voluntarily or administratively, e.g. after a permanent failure).
    PersistentLeave {
        /// The departing server.
        leaver: NodeId,
    },
}

/// An action message (the paper's `Action message` structure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Unique identifier (creator + index).
    pub id: ActionId,
    /// Number of actions the creator had marked green when it created
    /// this one; used to refresh `greenLines[creator]` when the action is
    /// ordered (input to the white line, i.e. garbage collection).
    pub green_line: u64,
    /// The requesting client (0 for engine-internal actions).
    pub client: ClientId,
    /// Payload.
    pub kind: ActionKind,
    /// Modelled payload size in bytes (the paper's evaluation uses
    /// 200-byte actions).
    pub size_bytes: u32,
}

impl Action {
    /// Whether this is a reconfiguration action (join/leave).
    pub fn is_reconfiguration(&self) -> bool {
        matches!(
            self.kind,
            ActionKind::PersistentJoin { .. } | ActionKind::PersistentLeave { .. }
        )
    }

    /// The update part, if this is an application action.
    pub fn update(&self) -> Option<&Op> {
        match &self.kind {
            ActionKind::App { update, .. } => Some(update),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use todr_db::Value;

    fn aid(server: u32, index: u64) -> ActionId {
        ActionId {
            server: NodeId::new(server),
            index,
        }
    }

    #[test]
    fn action_id_orders_by_server_then_index() {
        assert!(aid(0, 5) < aid(1, 1));
        assert!(aid(1, 1) < aid(1, 2));
        assert_eq!(aid(2, 3).to_string(), "n2#3");
    }

    #[test]
    fn reconfiguration_classification() {
        let app = Action {
            id: aid(0, 1),
            green_line: 0,
            client: ClientId(1),
            kind: ActionKind::App {
                query: None,
                update: Op::put("t", "k", Value::Int(1)),
            },
            size_bytes: 200,
        };
        assert!(!app.is_reconfiguration());
        assert!(app.update().is_some());

        let join = Action {
            id: aid(0, 2),
            green_line: 0,
            client: ClientId(0),
            kind: ActionKind::PersistentJoin {
                joiner: NodeId::new(9),
            },
            size_bytes: 64,
        };
        assert!(join.is_reconfiguration());
        assert!(join.update().is_none());
    }
}
