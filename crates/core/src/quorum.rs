//! Primary-component bookkeeping: dynamic linear voting, the vulnerable
//! record, and the knowledge computation of the exchange phase.
//!
//! ## Dynamic linear voting (§3.1)
//!
//! A component may install the next primary component iff it contains a
//! (weighted) majority **of the last primary component** — not of the
//! whole server set. This lets the primary "walk" through a sequence of
//! partitions while guaranteeing uniqueness: two disjoint components
//! cannot both hold a majority of the same last primary.
//!
//! ## Vulnerability (§5)
//!
//! A server that votes to form a primary (sends its CPC message) first
//! forces a [`VulnerableRecord`] to stable storage. Until the server
//! *knows* how the attempt ended, it must not present itself as
//! knowledgeable about that primary — if it crashed mid-attempt, safe
//! messages may have been delivered in the installed primary that it has
//! no recollection of. The record is invalidated when the exchange phase
//! proves one of:
//!
//! * **(a) resolution by knowledge** — some reachable server's
//!   `primComponent` shows the attempt (or a later primary) completed;
//!   after synchronizing green actions with it the server is up to date;
//! * **(b) resolution by refutation** — a member of the attempt reports
//!   a *later configuration without having installed* (the paper's
//!   "case 3"): by the EVS trichotomy nobody can have installed, so
//!   there is nothing to know;
//! * **(c) resolution by enumeration** — across (possibly many)
//!   exchanges, every member of the attempt has been observed either
//!   still vulnerable to the same attempt or refuting it (the paper's
//!   `bits` array): the attempt completed nowhere.
//!
//! The paper's Appendix A presents (b)/(c) as bit-array manipulations;
//! this module implements the same invariant — *a server stays vulnerable
//! until it can prove it missed nothing* — with the three explicit rules
//! above, which makes the proof obligation visible in the code.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use todr_net::NodeId;

use crate::action::ActionId;

/// The last primary component known to a server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimComponent {
    /// Index of the last installed primary component.
    pub prim_index: u64,
    /// Index of the attempt by which it was installed.
    pub attempt_index: u64,
    /// Its members.
    pub servers: BTreeSet<NodeId>,
    /// Members whose green `PERSISTENT_LEAVE` is known, and who are
    /// therefore discounted from the quorum base (see
    /// [`quorum_base`](Self::quorum_base)). Departures noted after the
    /// install are capped at one per incarnation — the bound the safety
    /// argument of [`note_departure`](Self::note_departure) needs.
    pub departed: BTreeSet<NodeId>,
}

impl PrimComponent {
    /// The initial primary component: the full configured server set,
    /// before any membership event.
    pub fn initial(servers: impl IntoIterator<Item = NodeId>) -> Self {
        PrimComponent {
            prim_index: 0,
            attempt_index: 0,
            servers: servers.into_iter().collect(),
            departed: BTreeSet::new(),
        }
    }

    /// The `(prim_index, attempt_index)` pair used to find the most
    /// up-to-date server during exchange.
    pub fn version(&self) -> (u64, u64) {
        (self.prim_index, self.attempt_index)
    }

    /// The membership that quorums are computed against: the installed
    /// members minus those whose permanent leave has been ordered.
    pub fn quorum_base(&self) -> BTreeSet<NodeId> {
        self.servers.difference(&self.departed).copied().collect()
    }

    /// Discounts `leaver` from the quorum base after its
    /// `PERSISTENT_LEAVE` was marked green, if the safety cap allows it.
    ///
    /// Without this, a primary that green-orders the leave of one of its
    /// own members can wedge forever: the next primary needs a majority
    /// of the *old* membership, which the departed member can no longer
    /// help form.
    ///
    /// Shrinking the base is only sound because it is capped at **one
    /// asymmetric departure per incarnation**: green marks are a prefix
    /// of one global order, so the *first* leaver greened after an
    /// install is unique — every server that shrinks at all discounts
    /// the same member. A component that has not yet learned the leave
    /// competes with the full base, and disjoint subsets of an
    /// `n`-member base cannot hold both a majority of `n` (at least
    /// `⌊n/2⌋+1` members) and a majority of `n-1` (at least
    /// `⌊(n-1)/2⌋+1` members, none of them the leaver): together that
    /// needs `n+1` distinct members even if the stale side counts the
    /// leaver itself. With two or more asymmetric departures the
    /// analogous bound fails (majorities of `n` and `n-2` *can* be
    /// disjoint), so further leaves wait for the next install, which
    /// re-bases membership symmetrically.
    ///
    /// Returns whether the base shrank.
    pub fn note_departure(&mut self, leaver: NodeId) -> bool {
        if self.servers.contains(&leaver) && self.departed.is_empty() {
            self.departed.insert(leaver);
            true
        } else {
            false
        }
    }
}

/// The persisted record of an installation attempt this server voted
/// for (the paper's `vulnerable` structure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnerableRecord {
    /// Whether the record is live (`Valid` in the paper).
    pub valid: bool,
    /// `primComponent.prim_index` before the attempt.
    pub prim_index: u64,
    /// The attempt's index.
    pub attempt_index: u64,
    /// Servers attempting the installation.
    pub set: BTreeSet<NodeId>,
    /// Members of `set` whose outcome knowledge has been accounted for
    /// (the paper's `bits`, keyed by server for clarity). When every
    /// member is accounted for, the attempt provably completed nowhere.
    pub accounted: BTreeSet<NodeId>,
}

impl VulnerableRecord {
    /// An invalid (inactive) record.
    pub fn invalid() -> Self {
        VulnerableRecord {
            valid: false,
            prim_index: 0,
            attempt_index: 0,
            set: BTreeSet::new(),
            accounted: BTreeSet::new(),
        }
    }

    /// A fresh, valid record for an attempt.
    pub fn new_attempt(
        prim_index: u64,
        attempt_index: u64,
        set: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        VulnerableRecord {
            valid: true,
            prim_index,
            attempt_index,
            set: set.into_iter().collect(),
            accounted: BTreeSet::new(),
        }
    }

    /// Whether `other` describes the same attempt.
    pub fn same_attempt(&self, other: &VulnerableRecord) -> bool {
        self.prim_index == other.prim_index
            && self.attempt_index == other.attempt_index
            && self.set == other.set
    }
}

/// The yellow record: actions delivered in a transitional configuration
/// of a primary component (order known; survival of the primary
/// unknown).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct YellowRecord {
    /// Whether the record is live.
    pub valid: bool,
    /// Ordered identifiers of the yellow actions.
    pub set: Vec<ActionId>,
}

impl YellowRecord {
    /// An invalid (empty) record.
    pub fn invalid() -> Self {
        YellowRecord {
            valid: false,
            set: Vec::new(),
        }
    }
}

/// Whether `conf_members` may form the next primary component under
/// (weighted) dynamic linear voting.
///
/// `weights` maps servers to voting weights; servers absent from the map
/// weigh 1. Vulnerable servers must be resolved *before* this check (the
/// caller guarantees no reachable server is still vulnerable).
pub fn is_weighted_quorum(
    conf_members: &[NodeId],
    last_prim: &PrimComponent,
    weights: &BTreeMap<NodeId, u64>,
) -> bool {
    let weight = |n: &NodeId| weights.get(n).copied().unwrap_or(1);
    let base = last_prim.quorum_base();
    let total: u64 = base.iter().map(weight).sum();
    let present: u64 = base
        .iter()
        .filter(|n| conf_members.contains(n))
        .map(weight)
        .sum();
    // Strict majority: ties are NOT a quorum (two halves must never both
    // proceed).
    present * 2 > total
}

/// One server's exchange-relevant state, as carried in its State
/// message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeInput {
    /// The reporting server.
    pub server: NodeId,
    /// Its last known primary component.
    pub prim_component: PrimComponent,
    /// Its current attempt index.
    pub attempt_index: u64,
    /// Its vulnerable record.
    pub vulnerable: VulnerableRecord,
    /// Its yellow record.
    pub yellow: YellowRecord,
}

/// Output of [`compute_knowledge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knowledge {
    /// The most advanced primary component among the participants.
    pub prim_component: PrimComponent,
    /// Servers that reported that primary component.
    pub updated_group: BTreeSet<NodeId>,
    /// The maximum attempt index among the updated group.
    pub attempt_index: u64,
    /// The combined yellow record (intersection over the valid yellow
    /// sets of the updated group), or invalid if none.
    pub yellow: YellowRecord,
    /// Per input server: its vulnerable record after resolution
    /// (rules (a)/(b)/(c) of the module docs).
    pub resolved_vulnerable: BTreeMap<NodeId, VulnerableRecord>,
}

/// The exchange phase's `ComputeKnowledge` (Appendix A, CodeSegment A.7),
/// as a pure function over the collected state messages.
pub fn compute_knowledge(inputs: &[KnowledgeInput]) -> Knowledge {
    assert!(!inputs.is_empty(), "compute_knowledge needs >= 1 input");

    // 1. Most advanced primary component and its group.
    let best_version = inputs
        .iter()
        .map(|i| i.prim_component.version())
        .max()
        .expect("non-empty");
    let mut prim_component = inputs
        .iter()
        .find(|i| i.prim_component.version() == best_version)
        .expect("non-empty")
        .prim_component
        .clone();
    // Same-version reporters agree on the installed membership but may
    // differ on whether the (unique) first post-install departure has
    // been greened locally yet; the union propagates it.
    for i in inputs {
        if i.prim_component.version() == best_version {
            prim_component
                .departed
                .extend(i.prim_component.departed.iter().copied());
        }
    }
    let updated_group: BTreeSet<NodeId> = inputs
        .iter()
        .filter(|i| i.prim_component.version() == best_version)
        .map(|i| i.server)
        .collect();
    let attempt_index = inputs
        .iter()
        .filter(|i| updated_group.contains(&i.server))
        .map(|i| i.attempt_index)
        .max()
        .unwrap_or(0);

    // 2. Combined yellow: intersection of valid yellow sets within the
    // updated group. (Yellow actions of an *older* primary are obsolete:
    // a newer primary already decided the order past them.)
    let valid_yellows: Vec<&YellowRecord> = inputs
        .iter()
        .filter(|i| updated_group.contains(&i.server) && i.yellow.valid)
        .map(|i| &i.yellow)
        .collect();
    let yellow = if valid_yellows.is_empty() {
        YellowRecord::invalid()
    } else {
        // Intersection, preserving the (identical) order: yellow sets
        // are ordered suffixes of the same primary's green order, so one
        // is a prefix of another; intersection keeps ids present in all.
        let mut set = valid_yellows[0].set.clone();
        for y in &valid_yellows[1..] {
            set.retain(|id| y.set.contains(id));
        }
        YellowRecord { valid: true, set }
    };

    // 3./4. Vulnerability resolution.
    let mut resolved_vulnerable = BTreeMap::new();
    for input in inputs {
        let mut v = input.vulnerable.clone();
        if v.valid {
            resolve_vulnerable(&mut v, inputs, &prim_component);
        }
        resolved_vulnerable.insert(input.server, v);
    }

    Knowledge {
        prim_component,
        updated_group,
        attempt_index,
        yellow,
        resolved_vulnerable,
    }
}

fn resolve_vulnerable(
    v: &mut VulnerableRecord,
    inputs: &[KnowledgeInput],
    best_prim: &PrimComponent,
) {
    // Rule (a): the attempt (or something later) completed, and a
    // reachable server knows it. After green synchronization with that
    // server (which this exchange performs), the vulnerable server is up
    // to date.
    let attempt_completed_here = best_prim.prim_index > v.prim_index;
    if attempt_completed_here {
        v.valid = false;
        return;
    }

    // Rules (b)/(c): account for members of the attempt.
    for input in inputs {
        if !v.set.contains(&input.server) {
            continue;
        }
        let them = &input.vulnerable;
        if them.valid && them.prim_index == v.prim_index && them.attempt_index == v.attempt_index {
            // Still stuck at the same attempt: accounted for (it did not
            // install — installing clears vulnerability and advances
            // prim_index).
            v.accounted.insert(input.server);
        } else if !them.valid && input.prim_component.prim_index == v.prim_index {
            // Refutation (case 3): this member moved on without
            // installing. By the trichotomy nobody installed.
            v.valid = false;
            return;
        }
        // A member with a *different valid* vulnerable record (another
        // attempt) gives no information about ours.
    }

    // Rule (c): everyone in the attempt is accounted for and none
    // installed.
    if v.accounted.len() == v.set.len() {
        v.valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ns(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| n(i)).collect()
    }

    fn prim(prim_index: u64, attempt: u64, servers: &[u32]) -> PrimComponent {
        PrimComponent {
            prim_index,
            attempt_index: attempt,
            servers: ns(servers),
            departed: BTreeSet::new(),
        }
    }

    fn input(server: u32, pc: PrimComponent) -> KnowledgeInput {
        KnowledgeInput {
            server: n(server),
            prim_component: pc,
            attempt_index: 0,
            vulnerable: VulnerableRecord::invalid(),
            yellow: YellowRecord::invalid(),
        }
    }

    // ---- quorum ----

    #[test]
    fn majority_of_last_primary_is_quorum() {
        let last = prim(3, 1, &[0, 1, 2, 3, 4]);
        let members = [n(0), n(1), n(2)];
        assert!(is_weighted_quorum(&members, &last, &BTreeMap::new()));
    }

    #[test]
    fn exactly_half_is_not_quorum() {
        let last = prim(3, 1, &[0, 1, 2, 3]);
        let members = [n(0), n(1)];
        assert!(!is_weighted_quorum(&members, &last, &BTreeMap::new()));
    }

    #[test]
    fn members_outside_last_primary_do_not_count() {
        let last = prim(3, 1, &[0, 1, 2]);
        // 5 members present, but only one from the last primary.
        let members = [n(0), n(5), n(6), n(7), n(8)];
        assert!(!is_weighted_quorum(&members, &last, &BTreeMap::new()));
    }

    #[test]
    fn weights_shift_the_majority() {
        let last = prim(1, 1, &[0, 1, 2]);
        let mut weights = BTreeMap::new();
        weights.insert(n(0), 3); // total = 3+1+1 = 5
        assert!(is_weighted_quorum(&[n(0)], &last, &weights));
        assert!(!is_weighted_quorum(&[n(1), n(2)], &last, &weights));
    }

    #[test]
    fn disjoint_components_cannot_both_have_quorum() {
        // Property over a specific configuration: any split of the last
        // primary yields at most one quorum side.
        let last = prim(1, 1, &[0, 1, 2, 3, 4]);
        let all: Vec<NodeId> = (0..5).map(n).collect();
        for mask in 0u32..32 {
            let side_a: Vec<NodeId> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            let side_b: Vec<NodeId> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) == 0)
                .map(|(_, &x)| x)
                .collect();
            let qa = is_weighted_quorum(&side_a, &last, &BTreeMap::new());
            let qb = is_weighted_quorum(&side_b, &last, &BTreeMap::new());
            assert!(!(qa && qb), "both sides of split {mask:#b} got quorum");
        }
    }

    #[test]
    fn departed_member_is_discounted_from_the_base() {
        // The wedge the explorer found: last primary {3,4}, then 4's
        // PERSISTENT_LEAVE goes green. Without the discount, server 3
        // can never again assemble a majority of {3,4}.
        let mut last = prim(3, 1, &[3, 4]);
        assert!(!is_weighted_quorum(
            &[n(0), n(1), n(2), n(3)],
            &last,
            &BTreeMap::new()
        ));
        assert!(last.note_departure(n(4)));
        assert_eq!(last.quorum_base(), ns(&[3]));
        assert!(is_weighted_quorum(
            &[n(0), n(1), n(2), n(3)],
            &last,
            &BTreeMap::new()
        ));
        // A component without the surviving member still has no quorum.
        assert!(!is_weighted_quorum(&[n(0), n(1)], &last, &BTreeMap::new()));
    }

    #[test]
    fn at_most_one_departure_per_incarnation() {
        let mut last = prim(3, 1, &[0, 1, 2, 3, 4]);
        assert!(last.note_departure(n(4)));
        assert!(!last.note_departure(n(3)), "second departure must wait");
        assert_eq!(last.quorum_base(), ns(&[0, 1, 2, 3]));
        // Repeating the same (already noted) leaver changes nothing.
        assert!(!last.note_departure(n(4)));
    }

    #[test]
    fn departure_of_a_non_member_is_ignored() {
        let mut last = prim(3, 1, &[0, 1, 2]);
        assert!(!last.note_departure(n(9)));
        assert_eq!(last.quorum_base(), ns(&[0, 1, 2]));
    }

    #[test]
    fn stale_and_shrunk_quorums_always_intersect() {
        // The safety bound behind the one-departure cap: a component
        // that knows the leave (base S \ {l}) and one that does not
        // (base S) can never both reach quorum from disjoint member
        // sets — even when the stale side counts the leaver itself.
        let all: Vec<NodeId> = (0..5).map(n).collect();
        let full = prim(1, 1, &[0, 1, 2, 3, 4]);
        let mut shrunk = prim(1, 1, &[0, 1, 2, 3, 4]);
        assert!(shrunk.note_departure(n(4)));
        for mask in 0u32..32 {
            let side_a: Vec<NodeId> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            let side_b: Vec<NodeId> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) == 0)
                .map(|(_, &x)| x)
                .collect();
            let qa = is_weighted_quorum(&side_a, &full, &BTreeMap::new());
            let qb = is_weighted_quorum(&side_b, &shrunk, &BTreeMap::new());
            assert!(
                !(qa && qb),
                "split {mask:#07b}: stale side and shrunk side both got quorum"
            );
        }
    }

    // ---- compute_knowledge ----

    #[test]
    fn most_advanced_primary_wins() {
        let inputs = vec![
            input(0, prim(2, 1, &[0, 1])),
            input(1, prim(3, 1, &[0, 1, 2])),
            input(2, prim(3, 1, &[0, 1, 2])),
        ];
        let k = compute_knowledge(&inputs);
        assert_eq!(k.prim_component.prim_index, 3);
        assert_eq!(k.updated_group, ns(&[1, 2]));
    }

    #[test]
    fn attempt_index_breaks_prim_ties() {
        let inputs = vec![input(0, prim(3, 1, &[0, 1])), input(1, prim(3, 2, &[0, 1]))];
        let k = compute_knowledge(&inputs);
        assert_eq!(k.prim_component.attempt_index, 2);
        assert_eq!(k.updated_group, ns(&[1]));
    }

    #[test]
    fn knowledge_merges_the_departure_across_reporters() {
        // Server 1 has greened the leave of 4 already; server 0 has not.
        // Both report the same installed primary; the exchange must
        // propagate the (unique) departure to the adopted component.
        let mut knows = prim(3, 1, &[3, 4]);
        assert!(knows.note_departure(n(4)));
        let inputs = vec![input(0, prim(3, 1, &[3, 4])), input(1, knows)];
        let k = compute_knowledge(&inputs);
        assert_eq!(k.prim_component.departed, ns(&[4]));
        assert_eq!(k.prim_component.quorum_base(), ns(&[3]));
        assert_eq!(k.updated_group, ns(&[0, 1]));
    }

    #[test]
    fn yellow_intersection_of_updated_group() {
        let a1 = ActionId {
            server: n(7),
            index: 1,
        };
        let a2 = ActionId {
            server: n(7),
            index: 2,
        };
        let mut i0 = input(0, prim(3, 1, &[0, 1]));
        i0.yellow = YellowRecord {
            valid: true,
            set: vec![a1, a2],
        };
        let mut i1 = input(1, prim(3, 1, &[0, 1]));
        i1.yellow = YellowRecord {
            valid: true,
            set: vec![a1],
        };
        // A stale server's yellow is ignored.
        let mut i2 = input(2, prim(2, 9, &[0, 1, 2]));
        i2.yellow = YellowRecord {
            valid: true,
            set: vec![a2],
        };
        let k = compute_knowledge(&[i0, i1, i2]);
        assert!(k.yellow.valid);
        assert_eq!(k.yellow.set, vec![a1]);
    }

    #[test]
    fn yellow_invalid_when_no_valid_yellow_in_group() {
        let k = compute_knowledge(&[input(0, prim(1, 1, &[0]))]);
        assert!(!k.yellow.valid);
    }

    #[test]
    fn vulnerable_resolved_by_later_primary() {
        // Rule (a): someone has prim_index 4 > our attempt's base 3.
        let mut i0 = input(0, prim(3, 1, &[0, 1]));
        i0.vulnerable = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1]));
        let i1 = input(1, prim(4, 1, &[0, 1]));
        let k = compute_knowledge(&[i0, i1]);
        assert!(!k.resolved_vulnerable[&n(0)].valid);
    }

    #[test]
    fn vulnerable_resolved_by_refutation() {
        // Rule (b): a member of the attempt moved on without the
        // primary advancing -> nobody installed.
        let mut i0 = input(0, prim(3, 1, &[0, 1, 2]));
        i0.vulnerable = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1, 2]));
        let i1 = input(1, prim(3, 1, &[0, 1, 2])); // invalid vulnerable, same prim
        let k = compute_knowledge(&[i0, i1]);
        assert!(!k.resolved_vulnerable[&n(0)].valid);
    }

    #[test]
    fn vulnerable_resolved_by_full_enumeration() {
        // Rule (c): all attempt members are still vulnerable to the same
        // attempt -> none installed.
        let attempt = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1]));
        let mut i0 = input(0, prim(3, 1, &[0, 1]));
        i0.vulnerable = attempt.clone();
        let mut i1 = input(1, prim(3, 1, &[0, 1]));
        i1.vulnerable = attempt.clone();
        let k = compute_knowledge(&[i0, i1]);
        assert!(!k.resolved_vulnerable[&n(0)].valid);
        assert!(!k.resolved_vulnerable[&n(1)].valid);
    }

    #[test]
    fn vulnerable_persists_without_proof() {
        // Attempt involved {0,1,2}; only {0,1} are here, both vulnerable:
        // server 2 might have installed. Stay vulnerable.
        let attempt = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1, 2]));
        let mut i0 = input(0, prim(3, 1, &[0, 1, 2]));
        i0.vulnerable = attempt.clone();
        let mut i1 = input(1, prim(3, 1, &[0, 1, 2]));
        i1.vulnerable = attempt.clone();
        let k = compute_knowledge(&[i0, i1]);
        assert!(k.resolved_vulnerable[&n(0)].valid, "must stay vulnerable");
        // But both members are now accounted for.
        assert_eq!(k.resolved_vulnerable[&n(0)].accounted, ns(&[0, 1]));
    }

    #[test]
    fn vulnerable_enumeration_accumulates_across_exchanges() {
        // Exchange 1: {0,1} of attempt {0,1,2} meet (see above).
        let attempt = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1, 2]));
        let mut i0 = input(0, prim(3, 1, &[0, 1, 2]));
        i0.vulnerable = attempt.clone();
        let mut i1 = input(1, prim(3, 1, &[0, 1, 2]));
        i1.vulnerable = attempt.clone();
        let k1 = compute_knowledge(&[i0, i1]);
        let v0_after = k1.resolved_vulnerable[&n(0)].clone();
        assert!(v0_after.valid);

        // Exchange 2 (eventual path): 0 now meets 2, which is still
        // vulnerable to the same attempt. All three accounted -> done.
        let mut i0b = input(0, prim(3, 1, &[0, 1, 2]));
        i0b.vulnerable = v0_after;
        let mut i2 = input(2, prim(3, 1, &[0, 1, 2]));
        i2.vulnerable = attempt.clone();
        let k2 = compute_knowledge(&[i0b, i2]);
        assert!(!k2.resolved_vulnerable[&n(0)].valid);
    }

    #[test]
    fn different_attempt_gives_no_information() {
        let mut i0 = input(0, prim(3, 1, &[0, 1]));
        i0.vulnerable = VulnerableRecord::new_attempt(3, 5, ns(&[0, 1]));
        let mut i1 = input(1, prim(3, 1, &[0, 1]));
        i1.vulnerable = VulnerableRecord::new_attempt(3, 6, ns(&[0, 1])); // later attempt
        let k = compute_knowledge(&[i0, i1]);
        // Server 1's record is about attempt 6 — it refutes nothing
        // about attempt 5, but its valid vulnerability proves it did not
        // install *anything* at prim 3... conservatively we only account
        // identical attempts; 0 stays vulnerable.
        assert!(k.resolved_vulnerable[&n(0)].valid);
    }

    #[test]
    fn initial_primary_contains_everyone() {
        let p = PrimComponent::initial((0..3).map(n));
        assert_eq!(p.prim_index, 0);
        assert_eq!(p.servers, ns(&[0, 1, 2]));
    }
}
