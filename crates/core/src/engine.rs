//! The replication engine actor: the paper's Appendix A state machine,
//! extended with online reconfiguration (§5.1) and the application
//! semantics of §6.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use todr_db::conflict::{classify, conflicts, ActionClass};
use todr_db::keys::{read_set, row_fingerprint, write_set};
use todr_db::{Database, Op, Query, QueryResult, ReadConsistency};
use todr_evs::{ConfId, Configuration, EvsCmd, EvsEvent};
use todr_net::{Datagram, NetOp, NodeId};
use todr_sim::{
    Actor, ActorId, CpuMeter, Ctx, EventColor, Payload, ProtocolEvent, ReadTier, SimDuration,
    SimTime, TraceLevel,
};
use todr_storage::{DiskDone, DiskOp, FileIoStats, LogFaultKind, StorageHandle, SyncToken};

use crate::action::{Action, ActionId, ActionKind, ClientId};
use crate::exchange::{retrans_plan, GreenPath, MemberProgress, RetransPlan};
use crate::persist::{self, BaseRecord, PersistEntry, RecoveryError};
use crate::quorum::{
    compute_knowledge, is_weighted_quorum, KnowledgeInput, PrimComponent, VulnerableRecord,
    YellowRecord,
};
use crate::semantics::{QuerySemantics, UpdateReplyPolicy};
use crate::types::{
    ClientReply, ClientRequest, EngineConfig, EngineCtl, EngineStats, StorageFault, TransferWire,
};

/// The engine's protocol state (Figure 4 of the paper, plus the
/// bootstrap and crash states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineState {
    /// Crashed; volatile state lost.
    Down,
    /// Online-join bootstrap: transferring the database from a
    /// representative (§5.1, CodeSegment 5.2).
    Joining,
    /// Member of a non-primary component.
    NonPrim,
    /// Member of the primary component, regular configuration.
    RegPrim,
    /// Member of the primary component, transitional configuration.
    TransPrim,
    /// Exchanging State messages after a view change.
    ExchangeStates,
    /// Exchanging missing actions.
    ExchangeActions,
    /// Attempting to install a primary component (CPC round).
    Construct,
    /// Interrupted CPC round; as far as this server knows nobody
    /// installed.
    No,
    /// Interrupted CPC round; somebody may have installed (the paper's
    /// `Un`decided state — the `?` transition leaves the server
    /// vulnerable).
    Un,
}

/// Messages the engine multicasts through the EVS layer.
#[derive(Debug, Clone)]
pub(crate) enum EngineMsg {
    /// A replicated action.
    Action(Action),
    /// Exchange-phase state message.
    State(StateMsg),
    /// Create Primary Component vote.
    Cpc { server: NodeId, conf: ConfId },
    /// Exchange-phase retransmission. `green_pos` is the action's global
    /// green position if it is green at the sender.
    Retrans {
        action: Action,
        green_pos: Option<u64>,
    },
    /// Exchange-phase green-state snapshot (fallback when the
    /// most-updated member lacks bodies — see [`crate::exchange`]).
    GreenSnapshot {
        db: Database,
        green_count: u64,
        green_cut: BTreeMap<NodeId, u64>,
        green_lines: BTreeMap<NodeId, u64>,
    },
    /// End-of-retransmission marker.
    RetransDone { server: NodeId },
}

/// The paper's State message.
#[derive(Debug, Clone)]
pub(crate) struct StateMsg {
    pub server: NodeId,
    pub conf: ConfId,
    pub progress: MemberProgress,
    pub attempt_index: u64,
    pub prim_component: PrimComponent,
    pub vulnerable: VulnerableRecord,
    pub yellow: YellowRecord,
}

/// What to do when a forced write completes.
enum AfterSync {
    /// Submit these actions to the group.
    Submit(Vec<Action>),
    /// Send our State message (exchange phase) — dropped if the
    /// configuration changed while the write was in flight.
    SendState { epoch: u64 },
    /// Send our CPC vote.
    SendCpc { epoch: u64 },
    /// Primary installed: release buffered client requests.
    Installed { epoch: u64 },
    /// Exchange ended without quorum: release buffered client requests.
    EnterNonPrim { epoch: u64 },
    /// Join bootstrap persisted: join the replicated group.
    JoinedReady,
    /// Nothing further.
    Noop,
}

/// A reply owed to a client once its action commits.
#[derive(Debug, Clone)]
struct PendingReply {
    request: crate::types::RequestId,
    reply_to: ActorId,
    query: Option<Query>,
    submitted_at: SimTime,
    policy: UpdateReplyPolicy,
    /// `Some` when this is a consistency-tiered query-only read routed
    /// through the ordered path (no valid lease); the green reply emits
    /// a [`ProtocolEvent::ReadServed`] with the ordered tier.
    read_tier: Option<ReadConsistency>,
}

/// Fast-path bookkeeping for one of this server's own in-flight
/// [`UpdateReplyPolicy::Fast`] actions: which members acknowledged
/// holding the sequenced action, and the query answer captured at
/// receipt time (the agreed prefix up to and including the action —
/// computing it any later would leak receipted successors in).
#[derive(Debug, Clone)]
struct FastPending {
    ackers: BTreeSet<NodeId>,
    result: Option<QueryResult>,
    /// When the receipt-time conflict check + dirty-view read finish on
    /// the CPU. Charged at receipt so the work overlaps the FastAck
    /// round trip (speculative execution); the commit-time reply just
    /// waits for it.
    ready_at: SimTime,
}

/// Timer for retrying the join bootstrap against another representative.
struct JoinRetry;

/// The replication engine for one server.
///
/// Wire traffic goes through the node's [`todr_evs::EvsDaemon`] (group
/// messages) and [`todr_net::NetFabric`] (join transfers); durability
/// through a [`todr_storage::DiskActor`] (which charges the virtual
/// forced-write latency) and a pluggable [`StorageHandle`] backend
/// (which holds the bytes — the deterministic sim store by default, or
/// a real file-backed store). Clients talk to the engine with
/// [`ClientRequest`] events; the harness controls it with
/// [`EngineCtl`].
pub struct ReplicationEngine {
    cfg: EngineConfig,
    evs: ActorId,
    disk: ActorId,
    fabric: ActorId,

    state: EngineState,
    store: StorageHandle,

    // ----- replicated knowledge (mirrored on stable storage) -----
    actions: BTreeMap<ActionId, Action>,
    green_count: u64,
    green_floor: u64,
    green_tail: Vec<ActionId>,
    green_cut: BTreeMap<NodeId, u64>,
    red_set: BTreeSet<ActionId>,
    red_cut: BTreeMap<NodeId, u64>,
    /// Out-of-order arrivals waiting for their per-creator gap to fill
    /// (see `mark_red`).
    stashed: BTreeMap<ActionId, Action>,
    green_lines: BTreeMap<NodeId, u64>,
    server_set: BTreeSet<NodeId>,
    /// Servers whose `PERSISTENT_LEAVE` this engine has marked green in
    /// its current run. Volatile (cleared on crash): a departed server
    /// never re-enters a view, so the set only matters for the one
    /// install that races a leave going green mid-installation.
    departed_servers: BTreeSet<NodeId>,
    prim_component: PrimComponent,
    attempt_index: u64,
    vulnerable: VulnerableRecord,
    yellow: YellowRecord,
    action_index: u64,
    /// Own created-but-not-yet-red actions, keyed by creator-local index
    /// for O(log n) removal when the action comes back red (the old
    /// `Vec` paid an O(n) scan per acceptance). Persisted as the
    /// paper's `ongoingQueue` (a `Vec` in index order).
    ongoing: BTreeMap<u64, Action>,

    // ----- database -----
    db: Database,
    dirty_db: Option<Database>,

    // ----- configuration / exchange volatile state -----
    conf: Option<Configuration>,
    conf_epoch: u64,
    state_msgs: BTreeMap<NodeId, StateMsg>,
    plan: Option<RetransPlan>,
    /// Actions received via retransmission since the exchange began;
    /// reported in the `SyncCompleted` observability event.
    recovered_this_exchange: u64,
    retrans_done: BTreeSet<NodeId>,
    cpc_received: BTreeSet<NodeId>,

    // ----- clients -----
    pending_replies: BTreeMap<ActionId, PendingReply>,
    /// Own [`UpdateReplyPolicy::Fast`] actions waiting for their FastAck
    /// quorum. Volatile, and cleared on any view change: a fast commit
    /// is only issued inside one uninterrupted regular primary
    /// configuration — entries that outlive it fall back to the normal
    /// green reply.
    pending_fast: BTreeMap<ActionId, FastPending>,
    buffered_reqs: Vec<ClientRequest>,
    parked_strict: Vec<ClientRequest>,

    // ----- read leases (volatile, same discipline as `pending_fast`) -----
    /// `conf_epoch` at the moment the lease was granted. A lease is only
    /// valid while this matches the current epoch, so any configuration
    /// change implicitly revokes it even before the explicit expiry in
    /// `on_trans_conf` runs.
    lease_epoch: u64,
    /// Virtual instant the current read lease drains. Renewed by
    /// [`EvsEvent::LeaseRenew`] heartbeat evidence; conservatively
    /// zeroed on any transitional configuration and on crash.
    lease_expiry: SimTime,
    /// Lease-tier linearizable reads parked behind a receipted-but-not-
    /// yet-green write covering their row; re-served as green marks
    /// land. Moved into `buffered_reqs` on a view change so they re-run
    /// through the normal (ordered) path after the next install.
    parked_lease: Vec<ClientRequest>,

    // ----- disk -----
    next_sync_token: u64,
    pending_syncs: BTreeMap<SyncToken, AfterSync>,
    /// Submissions created while a submit forced-write was already in
    /// flight; they ride the *next* forced write as one batch (pipelined
    /// group commit — one sync request per burst instead of one per
    /// action).
    submit_queue: Vec<Action>,
    submit_inflight: bool,
    /// Actions whose forced write completed after a configuration
    /// change had already moved us out of `RegPrim`/`NonPrim`. Sending
    /// them mid-exchange would interleave an action into the membership
    /// protocol's agreed sequence (a `Construct`-state member could
    /// receive it before the full CPC set); they are durable in
    /// `ongoing` and go out at the next install, where total order
    /// guarantees every receiver has already delivered all CPCs.
    deferred_submits: Vec<Action>,

    // ----- misc -----
    cpu: CpuMeter,
    /// Virtual instant of the most recent green CPU charge, for
    /// detecting same-burst green marks (they share the fixed per-burst
    /// overhead — see [`EngineConfig::cpu_burst_overhead`]).
    last_green_charge: Option<SimTime>,
    green_burst_len: u64,
    stats: EngineStats,
    join_targets: Vec<NodeId>,
    join_target_idx: usize,
    /// Joiners we have already announced with a PERSISTENT_JOIN that has
    /// not turned green yet (suppresses duplicate announcements while
    /// the joiner retries its bootstrap).
    pending_joins: BTreeSet<NodeId>,
    departed: bool,
    /// Why the last [`EngineCtl::Recover`] fail-stopped, if it did.
    /// Cleared by a successful recovery.
    recovery_error: Option<RecoveryError>,
}

impl ReplicationEngine {
    /// Creates an engine on the default deterministic sim storage
    /// backend. `evs` is the node's group-communication daemon, `disk`
    /// its disk actor, `fabric` the shared network fabric.
    pub fn new(cfg: EngineConfig, evs: ActorId, disk: ActorId, fabric: ActorId) -> Self {
        ReplicationEngine::with_storage(cfg, evs, disk, fabric, StorageHandle::sim())
    }

    /// Creates an engine on an explicit storage backend (see
    /// [`StorageHandle`]). The `DiskActor` still charges virtual-time
    /// forced-write latency; `store` decides where the bytes live.
    pub fn with_storage(
        cfg: EngineConfig,
        evs: ActorId,
        disk: ActorId,
        fabric: ActorId,
        store: StorageHandle,
    ) -> Self {
        let server_set: BTreeSet<NodeId> = cfg.server_set.iter().copied().collect();
        let prim_component = PrimComponent::initial(server_set.iter().copied());
        let state = if cfg.initial_member {
            EngineState::NonPrim
        } else {
            EngineState::Down
        };
        let mut engine = ReplicationEngine {
            cfg,
            evs,
            disk,
            fabric,
            state,
            store,
            actions: BTreeMap::new(),
            green_count: 0,
            green_floor: 0,
            green_tail: Vec::new(),
            green_cut: BTreeMap::new(),
            red_set: BTreeSet::new(),
            red_cut: BTreeMap::new(),
            stashed: BTreeMap::new(),
            green_lines: BTreeMap::new(),
            server_set,
            departed_servers: BTreeSet::new(),
            prim_component,
            attempt_index: 0,
            vulnerable: VulnerableRecord::invalid(),
            yellow: YellowRecord::invalid(),
            action_index: 0,
            ongoing: BTreeMap::new(),
            db: Database::new(),
            dirty_db: None,
            conf: None,
            conf_epoch: 0,
            state_msgs: BTreeMap::new(),
            plan: None,
            recovered_this_exchange: 0,
            retrans_done: BTreeSet::new(),
            cpc_received: BTreeSet::new(),
            pending_replies: BTreeMap::new(),
            pending_fast: BTreeMap::new(),
            buffered_reqs: Vec::new(),
            parked_strict: Vec::new(),
            lease_epoch: 0,
            lease_expiry: SimTime::ZERO,
            parked_lease: Vec::new(),
            next_sync_token: 0,
            pending_syncs: BTreeMap::new(),
            submit_queue: Vec::new(),
            submit_inflight: false,
            deferred_submits: Vec::new(),
            cpu: CpuMeter::new(),
            last_green_charge: None,
            green_burst_len: 0,
            stats: EngineStats::default(),
            join_targets: Vec::new(),
            join_target_idx: 0,
            pending_joins: BTreeSet::new(),
            departed: false,
            recovery_error: None,
        };
        if engine.state == EngineState::NonPrim {
            engine.persist_membership_records();
        }
        engine
    }

    // ============================================================
    // inspection (tests, checkers, experiment harness)
    // ============================================================

    /// Current protocol state.
    pub fn state(&self) -> EngineState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Why the last recovery attempt fail-stopped, if it did. `None`
    /// after a successful (or never-attempted) recovery.
    pub fn recovery_error(&self) -> Option<&RecoveryError> {
        self.recovery_error.as_ref()
    }

    /// Wall-clock I/O statistics from the storage backend, when it
    /// touches a real disk (`None` on the sim backend).
    pub fn storage_io_stats(&self) -> Option<FileIoStats> {
        self.store.io_stats()
    }

    /// Number of green (globally ordered, applied) actions.
    pub fn green_count(&self) -> u64 {
        self.green_count
    }

    /// Green action ids from `green_floor()` onward, in global order.
    pub fn green_tail(&self) -> &[ActionId] {
        &self.green_tail
    }

    /// Lowest green position this server still holds a body for.
    pub fn green_floor(&self) -> u64 {
        self.green_floor
    }

    /// Red (locally ordered only) action ids, in `ActionId` order.
    pub fn red_ids(&self) -> Vec<ActionId> {
        self.red_set.iter().copied().collect()
    }

    /// Content digest of the green database.
    pub fn db_digest(&self) -> u64 {
        self.db.digest()
    }

    /// Read-only view of the green database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The current replica set (grows/shrinks with joins/leaves).
    pub fn server_set(&self) -> &BTreeSet<NodeId> {
        &self.server_set
    }

    /// The last known primary component.
    pub fn prim_component(&self) -> &PrimComponent {
        &self.prim_component
    }

    /// The white line: every action at a green position below it is
    /// known green everywhere and can be discarded (§3).
    pub fn white_line(&self) -> u64 {
        self.server_set
            .iter()
            .map(|s| self.green_lines.get(s).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// Whether this server believes it is in the primary component.
    pub fn in_primary(&self) -> bool {
        matches!(self.state, EngineState::RegPrim | EngineState::TransPrim)
    }

    /// Number of action bodies currently retained in memory.
    pub fn retained_bodies(&self) -> usize {
        self.actions.len()
    }

    /// Whether this server currently holds a valid vulnerability record
    /// (it voted for a primary installation whose outcome it cannot yet
    /// prove — §5).
    pub fn is_vulnerable(&self) -> bool {
        self.vulnerable.valid
    }

    /// Discards **white** actions (§3: "these actions can be discarded
    /// since no other server will need them subsequently") and compacts
    /// the persisted log to a checkpoint of the current green state.
    /// Returns the number of bodies discarded.
    ///
    /// Safety of the discard: the white line is the minimum green line
    /// over the server set, so every potential exchange peer already has
    /// (at least) those actions green; the exchange plan never asks for
    /// green positions below any member's green count, and this server's
    /// advertised `green_floor` rises accordingly. The log compaction is
    /// staged and becomes durable with the next forced write
    /// (crash-before-commit reverts to the uncompacted log).
    pub fn checkpoint(&mut self) -> u64 {
        let white = self.white_line();
        if white <= self.green_floor {
            return 0;
        }
        // The prune window is bounded by what we actually retain, and
        // the floor advances by the number of tail entries *dropped* —
        // never re-based to `white` directly. Re-basing silently breaks
        // `green_floor + green_tail.len() == green_count` whenever the
        // window exceeds the tail (the two quantities then disagree
        // with the retained-body map, and `perform_retrans` indexes the
        // tail with a phantom offset). The debug asserts pin the
        // invariant: the white line never runs ahead of our own green
        // count, so the window is always fully covered by the tail.
        let want = (white - self.green_floor) as usize;
        let k = want.min(self.green_tail.len());
        debug_assert_eq!(
            want,
            k,
            "white line {white} beyond the retained green tail at {} (floor {}, tail {})",
            self.cfg.me,
            self.green_floor,
            self.green_tail.len()
        );
        let mut pruned = 0;
        for id in self.green_tail.drain(..k) {
            if self.actions.remove(&id).is_some() {
                pruned += 1;
            }
        }
        self.green_floor += k as u64;
        debug_assert_eq!(
            self.green_floor + self.green_tail.len() as u64,
            self.green_count,
            "green floor/tail disagree with the green count at {}",
            self.cfg.me
        );

        // Compact persistence: checkpoint the current green state and
        // re-log the red bodies on top of it.
        let base = BaseRecord {
            db: self.db.snapshot(),
            green_count: self.green_count,
            green_cut: self.green_cut.clone(),
        };
        self.store
            .put_record(persist::K_BASE, &base)
            .expect("serialize base");
        self.store.truncate_log();
        for id in &self.red_set {
            let action = self.actions.get(id).expect("red body present").clone();
            self.store
                .append_log_typed(&PersistEntry::Accepted(action))
                .expect("serialize action");
        }
        pruned
    }

    // ============================================================
    // plumbing
    // ============================================================

    fn send_group(&mut self, ctx: &mut Ctx<'_>, msg: EngineMsg, size_bytes: u32) {
        ctx.send_now(
            self.evs,
            EvsCmd::Send {
                payload: Rc::new(msg),
                size_bytes,
            },
        );
    }

    fn send_transfer(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, msg: TransferWire) {
        // Transfer messages ride the fabric directly (point-to-point,
        // outside the group), addressed to the peer's EVS daemon which
        // forwards non-group traffic to its engine.
        let size = match &msg {
            TransferWire::JoinRequest { .. } => 64,
            TransferWire::Snapshot { db, .. } => 512 + db.row_count() as u32 * 64,
            TransferWire::FastAck { .. } => 32,
        };
        ctx.send_now(
            self.fabric,
            NetOp::unicast(self.cfg.me, dst, Rc::new(msg), size),
        );
    }

    fn request_sync(&mut self, ctx: &mut Ctx<'_>, after: AfterSync) {
        self.next_sync_token += 1;
        let token = SyncToken(self.next_sync_token);
        self.pending_syncs.insert(token, after);
        self.stats.syncs_requested += 1;
        ctx.metrics().incr("engine.syncs_requested", 1);
        let me = ctx.self_id();
        ctx.send_now(
            self.disk,
            DiskOp::Sync {
                token,
                reply_to: me,
            },
        );
    }

    fn persist_membership_records(&mut self) {
        self.store
            .put_record(persist::K_PRIM, &self.prim_component)
            .expect("serialize prim component");
        self.store
            .put_record(persist::K_ATTEMPT, &self.attempt_index)
            .expect("serialize attempt index");
        self.store
            .put_record(persist::K_VULNERABLE, &self.vulnerable)
            .expect("serialize vulnerable");
        self.store
            .put_record(persist::K_YELLOW, &self.yellow)
            .expect("serialize yellow");
        self.store
            .put_record(persist::K_GREEN_LINES, &self.green_lines)
            .expect("serialize green lines");
        self.store
            .put_record(persist::K_SERVER_SET, &self.server_set)
            .expect("serialize server set");
    }

    fn persist_ongoing(&mut self) {
        self.store
            .put_record(persist::K_ACTION_INDEX, &self.action_index)
            .expect("serialize action index");
        // Persisted in the historical `ongoingQueue` format: a `Vec` in
        // creation (index) order, which is exactly the map's value order.
        let queue: Vec<&Action> = self.ongoing.values().collect();
        self.store
            .put_record(persist::K_ONGOING, &queue)
            .expect("serialize ongoing queue");
    }

    /// Refreshes the retained-body observability after the `actions` map
    /// changed: a gauge with the current level and a histogram sample so
    /// the peak survives in the export.
    fn note_retained(&mut self, ctx: &mut Ctx<'_>) {
        let n = self.actions.len() as u64;
        ctx.metrics().set_gauge("core.retained_bodies", n);
        ctx.metrics().record_value("core.retained_bodies_level", n);
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, at: SimTime, to: ActorId, reply: ClientReply) {
        self.stats.replies_sent += 1;
        ctx.metrics().incr("engine.replies_sent", 1);
        ctx.send_at(at.max(ctx.now()), to, reply);
    }

    // ============================================================
    // coloring (Appendix A, CodeSegment A.14)
    // ============================================================

    /// `MarkRed`: accept the action if it is the creator's next, log it,
    /// maintain the red cut. Out-of-order arrivals (possible during an
    /// exchange, when the green retransmission stream, the red
    /// retransmission streams and freshly submitted actions interleave
    /// in the agreed order) are stashed and re-tried as the creator's
    /// cut advances; by the install barrier every member has reached the
    /// exchange plan's targets, so stashes drain identically everywhere.
    /// Returns whether the action was newly accepted.
    fn mark_red(&mut self, ctx: &mut Ctx<'_>, action: &Action) -> bool {
        let accepted = self.accept_red(ctx, action);
        if accepted {
            self.drain_stash(ctx, action.id.server);
        }
        accepted
    }

    fn drain_stash(&mut self, ctx: &mut Ctx<'_>, creator: NodeId) {
        loop {
            let cut = self.red_cut.get(&creator).copied().unwrap_or(0);
            let next = ActionId {
                server: creator,
                index: cut + 1,
            };
            match self.stashed.remove(&next) {
                Some(action) => {
                    let ok = self.accept_red(ctx, &action);
                    debug_assert!(ok, "stashed action no longer contiguous");
                }
                None => break,
            }
        }
    }

    fn accept_red(&mut self, ctx: &mut Ctx<'_>, action: &Action) -> bool {
        let id = action.id;
        let cut = self.red_cut.entry(id.server).or_insert(0);
        if id.index > *cut + 1 {
            // Ahead of the contiguous prefix: keep it until the gap is
            // filled by a retransmission stream.
            self.stashed.insert(id, action.clone());
            return false;
        }
        if id.index != *cut + 1 {
            return false; // duplicate
        }
        *cut = id.index;
        self.actions.insert(id, action.clone());
        self.note_retained(ctx);
        self.red_set.insert(id);
        self.store
            .append_log_typed(&PersistEntry::Accepted(action.clone()))
            .expect("serialize action");
        self.stats.marked_red += 1;
        ctx.metrics().incr("engine.marked_red", 1);
        ctx.emit(ProtocolEvent::ActionOrdered {
            node: self.cfg.me.index(),
            creator: id.server.index(),
            action_seq: id.index,
            color: EventColor::Red,
        });
        ctx.emit(ProtocolEvent::RedLineAdvance {
            node: self.cfg.me.index(),
            red: self.stats.marked_red,
        });
        self.dirty_db = None;
        if id.server == self.cfg.me {
            self.ongoing.remove(&id.index);
            self.persist_ongoing();
            // Relaxed-policy replies fire on local (red) ordering.
            if let Some(p) = self.pending_replies.get(&id) {
                if p.policy == UpdateReplyPolicy::OnRed {
                    let p = self.pending_replies.remove(&id).expect("just checked");
                    let latency = ctx.now().saturating_since(p.submitted_at);
                    ctx.metrics().observe("engine.ordering_latency", latency);
                    ctx.emit(ProtocolEvent::ClientCommit {
                        client: action.client.0 as u64,
                        latency_nanos: latency.as_nanos(),
                    });
                    // Deliberately NOT a lease-oracle linearization
                    // point: an OnRed acknowledgement is the relaxed
                    // §6 contract — the update is not yet green
                    // anywhere, so a concurrent lease read elsewhere
                    // legitimately does not observe it.
                    let result = p.query.as_ref().map(|q| self.dirty_view().query(q));
                    let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action);
                    self.reply(
                        ctx,
                        at,
                        p.reply_to,
                        ClientReply::Committed {
                            request: p.request,
                            action: id,
                            result,
                            submitted_at: p.submitted_at,
                            green_seq: 0, // replied before global ordering
                        },
                    );
                }
            }
        }
        true
    }

    /// `MarkYellow`: accept as red and remember in the yellow set.
    fn mark_yellow(&mut self, ctx: &mut Ctx<'_>, action: &Action) {
        self.mark_red(ctx, action);
        if self.actions.contains_key(&action.id) && !self.yellow.set.contains(&action.id) {
            self.yellow.set.push(action.id);
            self.stats.marked_yellow += 1;
            ctx.metrics().incr("engine.marked_yellow", 1);
            ctx.emit(ProtocolEvent::ActionOrdered {
                node: self.cfg.me.index(),
                creator: action.id.server.index(),
                action_seq: action.id.index,
                color: EventColor::Yellow,
            });
            self.store
                .put_record(persist::K_YELLOW, &self.yellow)
                .expect("serialize yellow");
        }
    }

    /// `MarkGreen`: place the action on top of the green order and apply
    /// it to the database.
    fn mark_green(&mut self, ctx: &mut Ctx<'_>, action: &Action) {
        self.mark_red(ctx, action);
        let id = action.id;
        if self.green_cut.get(&id.server).copied().unwrap_or(0) >= id.index {
            return; // already green
        }
        // Green marking requires the body to be accepted: green streams
        // respect per-creator FIFO, so a contiguity gap here would be a
        // protocol bug, not a benign race.
        assert!(
            self.red_cut.get(&id.server).copied().unwrap_or(0) >= id.index,
            "green mark for unaccepted action {id} at {}",
            self.cfg.me
        );
        self.red_set.remove(&id);
        self.green_tail.push(id);
        self.green_count += 1;
        self.green_cut.insert(id.server, id.index);
        self.green_lines.insert(self.cfg.me, self.green_count);
        self.store
            .append_log_typed(&PersistEntry::Green(id))
            .expect("serialize green mark");
        self.stats.marked_green += 1;
        ctx.metrics().incr("engine.marked_green", 1);
        ctx.emit(ProtocolEvent::ActionOrdered {
            node: self.cfg.me.index(),
            creator: id.server.index(),
            action_seq: id.index,
            color: EventColor::Green,
        });
        ctx.emit(ProtocolEvent::GreenLineAdvance {
            node: self.cfg.me.index(),
            green: self.green_count,
        });
        self.dirty_db = None;

        // Apply to the database / membership structures.
        match &action.kind {
            ActionKind::App { update, .. } => {
                self.db.apply(update);
            }
            ActionKind::PersistentJoin { joiner } => self.apply_join_green(ctx, *joiner, id),
            ActionKind::PersistentLeave { leaver } => self.apply_leave_green(ctx, *leaver),
        }

        // Periodic white-line garbage collection (§3).
        let interval = self.cfg.checkpoint_interval;
        if interval > 0 && self.green_count.is_multiple_of(interval) {
            self.checkpoint();
            self.note_retained(ctx);
        }

        // Charge the per-action processing cost; answer the waiting
        // client (origin server only) once the CPU gets to it. Green
        // marks applied in the same delivery burst (same virtual
        // instant) share the fixed per-burst overhead: the first pays
        // the full per-action cost, the rest only the marginal part.
        let cost = if self.last_green_charge == Some(ctx.now()) {
            self.green_burst_len += 1;
            self.cfg
                .cpu_per_action
                .saturating_sub(self.cfg.cpu_burst_overhead)
        } else {
            if self.green_burst_len > 1 {
                ctx.metrics()
                    .record_value("engine.green_burst", self.green_burst_len);
            }
            self.green_burst_len = 1;
            self.last_green_charge = Some(ctx.now());
            self.cfg.cpu_per_action
        };
        let done_at = self.cpu.charge(ctx.now(), cost);
        // A fast-pending action that greens before its FastAck quorum
        // arrives takes the (better-informed) green reply below.
        self.pending_fast.remove(&id);
        if let Some(p) = self.pending_replies.remove(&id) {
            // `OnGreen` replies here by design; `Fast` replies here when
            // it was demoted (conflict) or its quorum never formed —
            // already-fast-committed actions left `pending_replies` at
            // commit time and cannot double-reply.
            if p.policy != UpdateReplyPolicy::OnRed {
                let latency = ctx.now().saturating_since(p.submitted_at);
                ctx.metrics().observe("engine.ordering_latency", latency);
                ctx.emit(ProtocolEvent::ClientCommit {
                    client: action.client.0 as u64,
                    latency_nanos: latency.as_nanos(),
                });
                self.note_update_acked(ctx, action);
                if p.read_tier == Some(ReadConsistency::Linearizable) {
                    if let Some(q) = &p.query {
                        let q = q.clone();
                        self.emit_read_served(ctx, &q, ReadTier::OrderedLinearizable, false);
                    }
                }
                let result = p.query.as_ref().map(|q| self.db.query(q));
                self.reply(
                    ctx,
                    done_at,
                    p.reply_to,
                    ClientReply::Committed {
                        request: p.request,
                        action: id,
                        result,
                        submitted_at: p.submitted_at,
                        green_seq: self.green_count,
                    },
                );
            }
        }
        // Lease reads parked behind a receipted write re-check their
        // conflict now that another action went green.
        if !self.parked_lease.is_empty() {
            let parked: Vec<ClientRequest> = std::mem::take(&mut self.parked_lease);
            for req in parked {
                self.serve_query(ctx, req);
            }
        }
        // Strict queries parked behind this server's own updates (§6
        // session causality) become answerable once the last one lands.
        if self.state == EngineState::RegPrim
            && self.pending_replies.is_empty()
            && self.ongoing.is_empty()
            && !self.parked_strict.is_empty()
        {
            let parked: Vec<ClientRequest> = std::mem::take(&mut self.parked_strict);
            for req in parked {
                self.serve_query(ctx, req);
            }
        }
    }

    /// CodeSegment 5.1, green `PERSISTENT_JOIN`.
    fn apply_join_green(&mut self, ctx: &mut Ctx<'_>, joiner: NodeId, action_id: ActionId) {
        self.pending_joins.remove(&joiner);
        if self.server_set.contains(&joiner) {
            return; // later duplicate join announcements are ignored
        }
        self.server_set.insert(joiner);
        self.red_cut.entry(joiner).or_insert(0);
        // The joiner's green line starts at the join action itself.
        self.green_lines.insert(joiner, self.green_count);
        self.persist_membership_records();
        ctx.trace("engine", format!("{} joined the replica set", joiner));
        if action_id.server == self.cfg.me {
            // I am the representative: ship the database.
            self.send_snapshot_to(ctx, joiner);
        }
    }

    /// CodeSegment 5.1, green `PERSISTENT_LEAVE`.
    fn apply_leave_green(&mut self, ctx: &mut Ctx<'_>, leaver: NodeId) {
        if !self.server_set.contains(&leaver) {
            return;
        }
        self.server_set.remove(&leaver);
        self.green_lines.remove(&leaver);
        self.departed_servers.insert(leaver);
        // Discount the leaver from the quorum base so the next primary
        // does not need a majority the departed member can no longer
        // help form (capped at one per incarnation — see
        // `PrimComponent::note_departure` for the safety argument).
        if self.prim_component.note_departure(leaver) {
            ctx.trace(
                "engine",
                format!("{leaver} discounted from the primary quorum base"),
            );
        }
        self.persist_membership_records();
        ctx.trace("engine", format!("{} left the replica set", leaver));
        if leaver == self.cfg.me {
            // "if (Action.leave_id == serverId) exit"
            self.departed = true;
            self.state = EngineState::Down;
            ctx.send_now(self.evs, EvsCmd::LeaveGroup);
        }
    }

    fn send_snapshot_to(&mut self, ctx: &mut Ctx<'_>, joiner: NodeId) {
        let snapshot = TransferWire::Snapshot {
            db: self.db.snapshot(),
            green_count: self.green_count,
            green_lines: self.green_lines.clone(),
            red_cut: self.green_cut.clone(),
            server_set: self.server_set.clone(),
            prim_component: self.prim_component.clone(),
            action_index: 0,
        };
        self.send_transfer(ctx, joiner, snapshot);
    }

    fn dirty_view(&mut self) -> &Database {
        if self.dirty_db.is_none() {
            let mut dirty = self.db.snapshot();
            for id in &self.red_set {
                if let Some(ActionKind::App { update, .. }) = self.actions.get(id).map(|a| &a.kind)
                {
                    dirty.apply(update);
                }
            }
            self.dirty_db = Some(dirty);
        }
        self.dirty_db.as_ref().expect("just built")
    }

    // ============================================================
    // client requests
    // ============================================================

    fn on_client_request(&mut self, ctx: &mut Ctx<'_>, req: ClientRequest) {
        // Injected bug (oracle self-test): a "lease" that is never
        // granted, renewed, or revoked — linearizable reads answered
        // straight from the local green database in any live state.
        // Correct while the node is inside the primary component;
        // becomes a stale read the moment it is partitioned away and
        // the surviving primary commits past it.
        #[cfg(feature = "chaos-mutations")]
        if self.cfg.chaos == Some(crate::types::ChaosMutation::ServeReadWithoutLease)
            && req.read_consistency == Some(ReadConsistency::Linearizable)
            && matches!(req.update, Op::Noop)
            && req.query.is_some()
            && !matches!(self.state, EngineState::Down | EngineState::Joining)
        {
            let query = req.query.clone().expect("just checked");
            self.stats.lease_reads += 1;
            ctx.metrics().incr("engine.lease_reads", 1);
            self.emit_read_served(ctx, &query, ReadTier::LeaseLinearizable, false);
            let result = self.db.query(&query);
            let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
            return self.reply(
                ctx,
                at,
                req.reply_to,
                ClientReply::QueryAnswer {
                    request: req.request,
                    result,
                    dirty: false,
                },
            );
        }
        match self.state {
            EngineState::Down | EngineState::Joining => {
                self.reply(
                    ctx,
                    ctx.now(),
                    req.reply_to,
                    ClientReply::Rejected {
                        request: req.request,
                        reason: "server unavailable",
                    },
                );
            }
            EngineState::RegPrim | EngineState::NonPrim => self.serve_request(ctx, req),
            // All other states buffer (Appendix A: "Client req: buffer
            // request").
            _ => self.buffered_reqs.push(req),
        }
    }

    fn serve_request(&mut self, ctx: &mut Ctx<'_>, req: ClientRequest) {
        let query_only = matches!(req.update, Op::Noop) && req.query.is_some();
        if query_only {
            return self.serve_query(ctx, req);
        }
        self.generate_client_action(ctx, req, None)
    }

    /// Creates, persists, and submits an action for a client request —
    /// the Appendix A NonPrim/RegPrim "Client req" path. `read_tier` is
    /// `Some` when the action is a consistency-tiered read routed
    /// through the ordered path.
    fn generate_client_action(
        &mut self,
        ctx: &mut Ctx<'_>,
        req: ClientRequest,
        read_tier: Option<ReadConsistency>,
    ) {
        // Backpressure: during a long non-primary partition red bodies
        // accumulate with no white line to discard them; refuse new
        // local updates at the retention bound instead of growing
        // without limit.
        if self.cfg.max_retained_bodies > 0 && self.actions.len() >= self.cfg.max_retained_bodies {
            ctx.metrics().incr("engine.backpressure_rejects", 1);
            return self.reply(
                ctx,
                ctx.now(),
                req.reply_to,
                ClientReply::Rejected {
                    request: req.request,
                    reason: "too many retained actions; retry later",
                },
            );
        }

        // Update (possibly with a query part): create and generate an
        // action (Appendix A, NonPrim/RegPrim "Client req").
        self.action_index += 1;
        let action = Action {
            id: ActionId {
                server: self.cfg.me,
                index: self.action_index,
            },
            green_line: self.green_count,
            client: req.client,
            kind: ActionKind::App {
                query: req.query.clone(),
                update: req.update.clone(),
            },
            size_bytes: req.size_bytes,
        };
        self.stats.actions_created += 1;
        ctx.metrics().incr("engine.actions_created", 1);
        ctx.emit(ProtocolEvent::ActionCreated {
            node: self.cfg.me.index(),
            action_seq: action.id.index,
        });
        if self.cfg.fast_path || self.cfg.read_leases {
            // Export the static conflict class so the todr-check oracle
            // can replay exactly the relation the engine evaluates.
            let d = classify(&req.update, req.query.as_ref()).digest();
            ctx.emit(ProtocolEvent::ActionFootprint {
                node: self.cfg.me.index(),
                action_seq: action.id.index,
                writes: d.writes,
                writes_unbounded: d.writes_unbounded,
                reads: d.reads,
                reads_unbounded: d.reads_unbounded,
                commutative: d.commutative,
                timestamped: d.timestamped,
            });
        }
        self.ongoing.insert(action.id.index, action.clone());
        self.persist_ongoing();
        self.pending_replies.insert(
            action.id,
            PendingReply {
                request: req.request,
                reply_to: req.reply_to,
                query: req.query,
                submitted_at: ctx.now(),
                policy: req.reply_policy,
                read_tier,
            },
        );
        // ** sync to disk, then generate.
        self.submit_queue.push(action);
        self.flush_submit_queue(ctx);
    }

    /// Pipelined group commit: issue at most one forced write for all
    /// submissions queued behind it. While a sync is in flight new
    /// submissions accumulate in `submit_queue`; when the completion
    /// arrives the whole batch rides the next forced write together,
    /// so N concurrent clients cost O(1) syncs per disk round trip
    /// instead of N.
    fn flush_submit_queue(&mut self, ctx: &mut Ctx<'_>) {
        if self.submit_inflight || self.submit_queue.is_empty() {
            return;
        }
        self.submit_inflight = true;
        let batch = std::mem::take(&mut self.submit_queue);
        ctx.metrics()
            .record_value("engine.submit_batch", batch.len() as u64);
        self.request_sync(ctx, AfterSync::Submit(batch));
    }

    fn serve_query(&mut self, ctx: &mut Ctx<'_>, req: ClientRequest) {
        // Consistency-tiered reads bypass the legacy semantics switch.
        if let Some(tier) = req.read_consistency {
            return self.serve_tiered_read(ctx, req, tier);
        }
        let query = req.query.clone().expect("query-only request");
        match req.query_semantics {
            QuerySemantics::Strict => {
                if self.state == EngineState::RegPrim {
                    // §6: "a query issued at one server can be answered
                    // as soon as all previous actions generated by this
                    // server were applied to the database, without the
                    // need to generate and order an action message" —
                    // so it parks behind this server's in-flight
                    // updates (session causality), but needs no global
                    // ordering of its own.
                    if !self.pending_replies.is_empty() || !self.ongoing.is_empty() {
                        self.parked_strict.push(req);
                        return;
                    }
                    let result = self.db.query(&query);
                    let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
                    self.reply(
                        ctx,
                        at,
                        req.reply_to,
                        ClientReply::QueryAnswer {
                            request: req.request,
                            result,
                            dirty: false,
                        },
                    );
                } else {
                    // Strict answers require the primary component; park
                    // until we are back in one (§6: "queries issued in a
                    // non-primary component cannot be answered until the
                    // connectivity with the primary is restored").
                    self.parked_strict.push(req);
                }
            }
            QuerySemantics::Weak => {
                let result = self.db.query(&query);
                self.reply(
                    ctx,
                    ctx.now(),
                    req.reply_to,
                    ClientReply::QueryAnswer {
                        request: req.request,
                        result,
                        dirty: false,
                    },
                );
            }
            QuerySemantics::Dirty => {
                let result = self.dirty_view().query(&query);
                self.reply(
                    ctx,
                    ctx.now(),
                    req.reply_to,
                    ClientReply::QueryAnswer {
                        request: req.request,
                        result,
                        dirty: true,
                    },
                );
            }
        }
    }

    // ============================================================
    // consistency-tiered reads (LARK-style primary read leases)
    // ============================================================

    /// Dispatches a [`ReadConsistency`]-tiered query-only request.
    ///
    /// `GreenSnapshot` and `RedOverlay` are always local and lease-free:
    /// the first answers from the green prefix, the second replays the
    /// local red suffix over it (the same view the `Dirty` semantics
    /// expose). `Linearizable` is answered locally under a valid read
    /// lease, and otherwise re-routed through the ordered action path —
    /// it is never rejected.
    fn serve_tiered_read(&mut self, ctx: &mut Ctx<'_>, req: ClientRequest, tier: ReadConsistency) {
        let query = req.query.clone().expect("query-only request");
        match tier {
            ReadConsistency::GreenSnapshot => {
                self.stats.snapshot_reads += 1;
                ctx.metrics().incr("engine.snapshot_reads", 1);
                self.emit_read_served(ctx, &query, ReadTier::GreenSnapshot, false);
                let result = self.db.query(&query);
                let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
                self.reply(
                    ctx,
                    at,
                    req.reply_to,
                    ClientReply::QueryAnswer {
                        request: req.request,
                        result,
                        dirty: false,
                    },
                );
            }
            ReadConsistency::RedOverlay => {
                self.stats.overlay_reads += 1;
                ctx.metrics().incr("engine.overlay_reads", 1);
                self.emit_read_served(ctx, &query, ReadTier::RedOverlay, true);
                let result = self.dirty_view().query(&query);
                let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
                self.reply(
                    ctx,
                    at,
                    req.reply_to,
                    ClientReply::QueryAnswer {
                        request: req.request,
                        result,
                        dirty: true,
                    },
                );
            }
            ReadConsistency::Linearizable => {
                if self.try_lease_read(ctx, &req) {
                    return;
                }
                // No valid lease: re-route through the ordered path. The
                // read becomes an ordinary (Noop-update) action, totally
                // ordered and answered from the green database at apply
                // time — in `NonPrim` it turns red and is answered after
                // the next merge with the primary.
                self.stats.ordered_reads += 1;
                ctx.metrics().incr("engine.ordered_reads", 1);
                let mut req = req;
                req.reply_policy = UpdateReplyPolicy::OnGreen;
                self.generate_client_action(ctx, req, Some(ReadConsistency::Linearizable));
            }
        }
    }

    /// Whether this engine currently holds a valid read lease: leases
    /// exist only inside a regular primary configuration, are sealed to
    /// the epoch they were granted in, and drain `lease_duration` after
    /// the last grant or heartbeat renewal.
    fn lease_valid(&self, now: SimTime) -> bool {
        self.cfg.read_leases
            && self.state == EngineState::RegPrim
            && self.lease_epoch == self.conf_epoch
            && now < self.lease_expiry
    }

    /// Attempts to answer a linearizable read locally under the read
    /// lease. Returns `false` if the caller must fall back to the
    /// ordered path (no valid lease, or an unbounded query).
    ///
    /// Safety of the local answer: an update acknowledged to any client
    /// was green at its origin, so it was *safe-delivered* there — every
    /// member of the component had receipted it first. With eager
    /// receipts on, this engine therefore already holds any acknowledged
    /// update at least red. Serving from the green prefix alone could
    /// still miss it, so the read parks behind any receipted-but-not-
    /// yet-green write covering its row and is re-served as green marks
    /// land. Unbounded queries (scans, counts, digests) conflict with
    /// every write footprint and go ordered instead.
    fn try_lease_read(&mut self, ctx: &mut Ctx<'_>, req: &ClientRequest) -> bool {
        if !self.lease_valid(ctx.now()) {
            return false;
        }
        let query = match &req.query {
            Some(q @ Query::Get { .. }) => q.clone(),
            _ => return false,
        };
        if self.lease_read_conflict(&query) {
            self.stats.lease_reads_parked += 1;
            ctx.metrics().incr("engine.lease_reads_parked", 1);
            self.parked_lease.push(req.clone());
            return true;
        }
        self.stats.lease_reads += 1;
        ctx.metrics().incr("engine.lease_reads", 1);
        self.emit_read_served(ctx, &query, ReadTier::LeaseLinearizable, false);
        let result = self.db.query(&query);
        let at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
        self.reply(
            ctx,
            at,
            req.reply_to,
            ClientReply::QueryAnswer {
                request: req.request,
                result,
                dirty: false,
            },
        );
        true
    }

    /// Whether any receipted-but-not-yet-green in-flight write (red set
    /// or yellow set) covers a row the query reads. Bodies missing from
    /// the action store count as conflicting.
    fn lease_read_conflict(&self, query: &Query) -> bool {
        let reads = read_set(query);
        self.red_set.iter().chain(self.yellow.set.iter()).any(|id| {
            match self.actions.get(id).map(|a| &a.kind) {
                Some(ActionKind::App { update, .. }) => write_set(update).intersects(&reads),
                Some(_) => false, // membership actions write no rows
                None => true,
            }
        })
    }

    /// Emits the oracle-facing [`ProtocolEvent::ReadServed`] record for
    /// a bounded read, carrying the row version observed by the answer.
    fn emit_read_served(&mut self, ctx: &mut Ctx<'_>, query: &Query, tier: ReadTier, dirty: bool) {
        if let Query::Get { table, key } = query {
            let version = if dirty {
                let (table, key) = (table.clone(), key.clone());
                self.dirty_view().row_version(&table, &key)
            } else {
                self.db.row_version(table, key)
            };
            ctx.emit(ProtocolEvent::ReadServed {
                node: self.cfg.me.index(),
                key_fp: row_fingerprint(table, key),
                tier,
                version,
            });
        }
    }

    /// Emits the oracle-facing [`ProtocolEvent::UpdateAcked`] record
    /// when an update's commit is acknowledged to its client with the
    /// strong (green or fast) contract — the linearization points the
    /// read oracle measures staleness against. Relaxed OnRed replies
    /// never reach here, and Noop updates (query-only reads on the
    /// ordered path) are not writes and emit nothing.
    fn note_update_acked(&mut self, ctx: &mut Ctx<'_>, action: &Action) {
        if !self.cfg.read_leases {
            return;
        }
        if !matches!(&action.kind, ActionKind::App { update, .. } if !matches!(update, Op::Noop)) {
            return;
        }
        ctx.emit(ProtocolEvent::UpdateAcked {
            node: self.cfg.me.index(),
            creator: action.id.server.index(),
            action_seq: action.id.index,
        });
    }

    /// Grants (or heartbeat-renews) the read lease for the current
    /// configuration.
    fn grant_lease(&mut self, ctx: &mut Ctx<'_>, renewal: bool) {
        let conf_id = match &self.conf {
            Some(conf) => conf.id,
            None => return,
        };
        self.lease_epoch = self.conf_epoch;
        self.lease_expiry = ctx.now() + self.cfg.lease_duration;
        if renewal {
            self.stats.lease_renewals += 1;
            ctx.metrics().incr("engine.lease_renewals", 1);
        } else {
            self.stats.lease_grants += 1;
            ctx.metrics().incr("engine.lease_grants", 1);
        }
        ctx.emit(ProtocolEvent::LeaseGranted {
            node: self.cfg.me.index(),
            conf_seq: conf_id.seq,
            coordinator: conf_id.coordinator.index(),
            expires_nanos: self.lease_expiry.as_nanos(),
            renewal,
        });
    }

    /// Heartbeat renewal from the EVS daemon: every member of the
    /// regular configuration was heard from within two heartbeat
    /// intervals. Only renews a lease granted in the *same*
    /// configuration — a renewal that raced a view change is dropped.
    fn on_lease_renew(&mut self, ctx: &mut Ctx<'_>, conf_id: ConfId) {
        if !self.cfg.read_leases || self.state != EngineState::RegPrim {
            return;
        }
        if self.conf.as_ref().map(|c| c.id) != Some(conf_id) {
            return;
        }
        if self.lease_epoch != self.conf_epoch {
            return; // no lease was granted in this configuration
        }
        self.grant_lease(ctx, true);
    }

    /// Conservatively revokes the lease (view change or crash). Counts
    /// an expiration only if the lease was still live.
    fn expire_lease(&mut self, ctx: &mut Ctx<'_>) {
        if self.lease_valid(ctx.now()) {
            self.stats.lease_expirations += 1;
            ctx.metrics().incr("engine.lease_expirations", 1);
        }
        self.lease_expiry = SimTime::ZERO;
    }

    /// `Handle_buff_requests` (Appendix A, CodeSegment A.8).
    fn handle_buffered(&mut self, ctx: &mut Ctx<'_>) {
        // Actions deferred across the view change go out first: they
        // are older than any buffered request (lower indices), their
        // forced write already happened, and per-server FIFO keeps the
        // receivers' red cuts contiguous.
        for action in std::mem::take(&mut self.deferred_submits) {
            let size = action.size_bytes;
            self.send_group(ctx, EngineMsg::Action(action), size);
        }
        self.flush_submit_queue(ctx);
        let buffered: Vec<ClientRequest> = std::mem::take(&mut self.buffered_reqs);
        for req in buffered {
            self.on_client_request(ctx, req);
        }
        if self.state == EngineState::RegPrim {
            let parked: Vec<ClientRequest> = std::mem::take(&mut self.parked_strict);
            for req in parked {
                self.serve_query(ctx, req);
            }
        }
    }

    // ============================================================
    // view changes & exchange
    // ============================================================

    fn on_reg_conf(&mut self, ctx: &mut Ctx<'_>, conf: Configuration) {
        self.conf_epoch += 1;
        self.conf = Some(conf);
        match self.state {
            EngineState::TransPrim => {
                // A.3: vulnerable invalid (we received every message of
                // the primary up to the cut), yellow becomes valid.
                self.vulnerable.valid = false;
                self.yellow.valid = true;
                self.shift_to_exchange_states(ctx);
            }
            EngineState::No => {
                // A.11: nobody can have installed (case 3).
                self.vulnerable.valid = false;
                self.shift_to_exchange_states(ctx);
            }
            EngineState::Un | EngineState::NonPrim => {
                // A.12 / A.1: vulnerability (if any) stays as is — the
                // `?` transition of Figure 4.
                self.shift_to_exchange_states(ctx);
            }
            EngineState::Down | EngineState::Joining => {}
            other => panic!(
                "RegConf cannot arrive in {:?} (EVS delivers TransConf first)",
                other
            ),
        }
    }

    fn on_trans_conf(&mut self, ctx: &mut Ctx<'_>) {
        // Fast commits are scoped to one uninterrupted regular primary:
        // quorums still forming do not carry across the view change (the
        // owed replies fall back to firing on green).
        let demoted = self.pending_fast.len() as u64;
        if demoted > 0 {
            self.stats.fast_demotions_on_view_change += demoted;
            ctx.metrics()
                .incr("engine.fast_demotions_on_view_change", demoted);
        }
        self.pending_fast.clear();
        // Read leases follow the same volatile discipline: any view
        // change revokes them before the membership protocol even
        // decides what the next component looks like.
        self.expire_lease(ctx);
        if !self.parked_lease.is_empty() {
            // Parked lease reads re-enter the normal request path after
            // the next install (or non-primary transition) releases the
            // buffer — they fall back to the ordered read there.
            let parked: Vec<ClientRequest> = std::mem::take(&mut self.parked_lease);
            self.buffered_reqs.extend(parked);
        }
        match self.state {
            EngineState::RegPrim => self.state = EngineState::TransPrim,
            EngineState::Construct => self.state = EngineState::No,
            EngineState::ExchangeStates | EngineState::ExchangeActions => {
                self.state = EngineState::NonPrim;
            }
            // NonPrim ignores transitional configurations (A.1); the
            // remaining states cannot see one.
            _ => {
                ctx.trace_at(
                    TraceLevel::Debug,
                    "engine",
                    format!("trans conf ignored in {:?}", self.state),
                );
            }
        }
    }

    /// `Shift_to_exchange_states` (CodeSegment A.5).
    fn shift_to_exchange_states(&mut self, ctx: &mut Ctx<'_>) {
        self.state_msgs.clear();
        self.plan = None;
        self.retrans_done.clear();
        self.cpc_received.clear();
        self.state = EngineState::ExchangeStates;
        self.persist_membership_records();
        let epoch = self.conf_epoch;
        self.request_sync(ctx, AfterSync::SendState { epoch });
    }

    fn my_state_msg(&self) -> StateMsg {
        StateMsg {
            server: self.cfg.me,
            conf: self.conf.as_ref().expect("in a configuration").id,
            progress: MemberProgress {
                server: self.cfg.me,
                green_count: self.green_count,
                green_floor: self.green_floor,
                red_cut: self.red_cut.clone(),
            },
            attempt_index: self.attempt_index,
            prim_component: self.prim_component.clone(),
            vulnerable: self.vulnerable.clone(),
            yellow: self.yellow.clone(),
        }
    }

    fn on_state_msg(&mut self, ctx: &mut Ctx<'_>, sm: StateMsg) {
        if self.state != EngineState::ExchangeStates {
            ctx.trace_at(
                TraceLevel::Debug,
                "engine",
                format!("state msg ignored in {:?}", self.state),
            );
            return;
        }
        let conf = self.conf.as_ref().expect("in a configuration");
        if sm.conf != conf.id {
            return;
        }
        self.state_msgs.insert(sm.server, sm);
        let members = conf.members.clone();
        if members.iter().all(|m| self.state_msgs.contains_key(m)) {
            self.on_all_states(ctx);
        }
    }

    fn on_all_states(&mut self, ctx: &mut Ctx<'_>) {
        let progress: Vec<MemberProgress> = self
            .state_msgs
            .values()
            .map(|sm| sm.progress.clone())
            .collect();
        let plan = retrans_plan(&progress);
        self.state = EngineState::ExchangeActions;
        if plan.senders.contains(&self.cfg.me) {
            self.perform_retrans(ctx, &plan);
        }
        let empty = plan.is_empty();
        self.plan = Some(plan);
        if empty {
            self.end_of_retrans(ctx);
        }
    }

    /// `Retrans` (our role in the deterministic plan).
    fn perform_retrans(&mut self, ctx: &mut Ctx<'_>, plan: &RetransPlan) {
        match plan.green {
            GreenPath::Retrans(sender, from, to) if sender == self.cfg.me => {
                for pos in from..to {
                    let idx = (pos - self.green_floor) as usize;
                    let id = self.green_tail[idx];
                    let action = self.actions.get(&id).expect("green body retained").clone();
                    let size = action.size_bytes + 16;
                    self.stats.retransmitted += 1;
                    ctx.metrics().incr("engine.retransmitted", 1);
                    self.send_group(
                        ctx,
                        EngineMsg::Retrans {
                            action,
                            green_pos: Some(pos),
                        },
                        size,
                    );
                }
            }
            GreenPath::Snapshot(sender) if sender == self.cfg.me => {
                let size = 512 + self.db.row_count() as u32 * 64;
                let msg = EngineMsg::GreenSnapshot {
                    db: self.db.snapshot(),
                    green_count: self.green_count,
                    green_cut: self.green_cut.clone(),
                    green_lines: self.green_lines.clone(),
                };
                self.send_group(ctx, msg, size);
            }
            _ => {}
        }
        for &(sender, creator, from, to) in &plan.red {
            if sender != self.cfg.me {
                continue;
            }
            for index in from..=to {
                let id = ActionId {
                    server: creator,
                    index,
                };
                if !self.red_set.contains(&id) {
                    continue; // green here: covered by the green path
                }
                let action = self.actions.get(&id).expect("red body present").clone();
                let size = action.size_bytes + 16;
                self.stats.retransmitted += 1;
                ctx.metrics().incr("engine.retransmitted", 1);
                self.send_group(
                    ctx,
                    EngineMsg::Retrans {
                        action,
                        green_pos: None,
                    },
                    size,
                );
            }
        }
        self.send_group(
            ctx,
            EngineMsg::RetransDone {
                server: self.cfg.me,
            },
            32,
        );
    }

    fn on_retrans(&mut self, ctx: &mut Ctx<'_>, action: Action, green_pos: Option<u64>) {
        self.recovered_this_exchange += 1;
        match green_pos {
            Some(pos) => {
                if pos < self.green_count {
                    // Already green here; nothing to do.
                } else if pos == self.green_count {
                    self.mark_green(ctx, &action);
                } else {
                    panic!(
                        "green retransmission gap at {}: got pos {pos}, have {}",
                        self.cfg.me, self.green_count
                    );
                }
            }
            None => {
                self.mark_red(ctx, &action);
            }
        }
    }

    fn on_green_snapshot(
        &mut self,
        ctx: &mut Ctx<'_>,
        db: Database,
        green_count: u64,
        green_cut: BTreeMap<NodeId, u64>,
        green_lines: BTreeMap<NodeId, u64>,
    ) {
        if green_count <= self.green_count {
            return; // we are at least as advanced
        }
        ctx.trace(
            "engine",
            format!(
                "adopting green snapshot at {} (green {} -> {})",
                self.cfg.me, self.green_count, green_count
            ),
        );
        self.adopt_base(db, green_count, green_cut);
        for (server, line) in green_lines {
            let entry = self.green_lines.entry(server).or_insert(0);
            *entry = (*entry).max(line);
        }
        self.green_lines.insert(self.cfg.me, self.green_count);
        self.persist_membership_records();
    }

    /// Replaces the green prefix with an inherited database state (§5.1
    /// transfer / exchange snapshot fallback). Red actions the snapshot
    /// already incorporates are dropped; the rest are re-logged on the
    /// fresh base.
    fn adopt_base(&mut self, db: Database, green_count: u64, green_cut: BTreeMap<NodeId, u64>) {
        self.db = db;
        self.dirty_db = None;
        self.green_count = green_count;
        self.green_floor = green_count;
        self.green_tail.clear();
        // Merge cuts: the snapshot may know creators we do not and vice
        // versa.
        for (server, cut) in &green_cut {
            let entry = self.green_cut.entry(*server).or_insert(0);
            *entry = (*entry).max(*cut);
            let red = self.red_cut.entry(*server).or_insert(0);
            *red = (*red).max(*cut);
        }
        let cuts = self.green_cut.clone();
        self.red_set
            .retain(|id| id.index > cuts.get(&id.server).copied().unwrap_or(0));
        self.actions
            .retain(|id, _| id.index > cuts.get(&id.server).copied().unwrap_or(0));

        // Rebase persistence: base record + re-logged red bodies.
        self.store.truncate_log();
        let base = BaseRecord {
            db: self.db.snapshot(),
            green_count: self.green_count,
            green_cut: self.green_cut.clone(),
        };
        self.store
            .put_record(persist::K_BASE, &base)
            .expect("serialize base");
        for id in &self.red_set {
            let action = self.actions.get(id).expect("red body present").clone();
            self.store
                .append_log_typed(&PersistEntry::Accepted(action))
                .expect("serialize action");
        }
    }

    fn on_retrans_done(&mut self, ctx: &mut Ctx<'_>, server: NodeId) {
        if self.state != EngineState::ExchangeActions {
            return;
        }
        self.retrans_done.insert(server);
        let done = match &self.plan {
            Some(plan) => plan.senders.iter().all(|s| self.retrans_done.contains(s)),
            None => false,
        };
        if done {
            self.end_of_retrans(ctx);
        }
    }

    /// `End_of_retrans` (CodeSegment A.5) + `ComputeKnowledge` (A.7) +
    /// `IsQuorum` (A.8).
    fn end_of_retrans(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.exchanges_completed += 1;
        ctx.metrics().incr("engine.exchanges_completed", 1);
        ctx.emit(ProtocolEvent::SyncCompleted {
            node: self.cfg.me.index(),
            actions_recovered: self.recovered_this_exchange,
        });
        self.recovered_this_exchange = 0;
        // Incorporate green lines from the state messages.
        for sm in self.state_msgs.values() {
            let entry = self.green_lines.entry(sm.server).or_insert(0);
            *entry = (*entry).max(sm.progress.green_count);
        }

        let inputs: Vec<KnowledgeInput> = self
            .state_msgs
            .values()
            .map(|sm| KnowledgeInput {
                server: sm.server,
                prim_component: sm.prim_component.clone(),
                attempt_index: sm.attempt_index,
                vulnerable: sm.vulnerable.clone(),
                yellow: sm.yellow.clone(),
            })
            .collect();
        let knowledge = compute_knowledge(&inputs);
        self.prim_component = knowledge.prim_component.clone();
        self.attempt_index = knowledge.attempt_index;
        self.yellow = knowledge.yellow.clone();
        self.vulnerable = knowledge.resolved_vulnerable[&self.cfg.me].clone();

        let conf_members = self
            .conf
            .as_ref()
            .expect("in a configuration")
            .members
            .clone();
        let any_vulnerable = conf_members.iter().any(|m| {
            knowledge
                .resolved_vulnerable
                .get(m)
                .is_some_and(|v| v.valid)
        });
        let quorum = !any_vulnerable
            && is_weighted_quorum(&conf_members, &self.prim_component, &self.cfg.weights);

        if quorum {
            self.attempt_index += 1;
            self.vulnerable = VulnerableRecord::new_attempt(
                self.prim_component.prim_index,
                self.attempt_index,
                conf_members.iter().copied(),
            );
            self.state = EngineState::Construct;
            self.persist_membership_records();
            let epoch = self.conf_epoch;
            self.request_sync(ctx, AfterSync::SendCpc { epoch });
        } else {
            self.state = EngineState::NonPrim;
            self.persist_membership_records();
            let epoch = self.conf_epoch;
            self.request_sync(ctx, AfterSync::EnterNonPrim { epoch });
        }
    }

    fn on_cpc(&mut self, ctx: &mut Ctx<'_>, server: NodeId, conf: ConfId) {
        let Some(current) = &self.conf else {
            return;
        };
        if conf != current.id {
            return;
        }
        match self.state {
            EngineState::Construct => {
                self.cpc_received.insert(server);
                let members = current.members.clone();
                if members.iter().all(|m| self.cpc_received.contains(m)) {
                    // A.9: everyone voted; install.
                    for m in &members {
                        self.green_lines.insert(*m, self.green_count);
                    }
                    self.install(ctx);
                    if self.departed {
                        // Our own PERSISTENT_LEAVE turned green during
                        // the installation's red conversion: we are out
                        // of the system ("if (Action.leave_id ==
                        // serverId) exit") and must not claim the
                        // primary we just helped create.
                        return;
                    }
                    self.state = EngineState::RegPrim;
                    if self.cfg.read_leases {
                        // The install greened everything a quorum of the
                        // previous primary knew; any update acknowledged
                        // anywhere is now in our green prefix, so the
                        // lease can start here.
                        self.grant_lease(ctx, false);
                    }
                    let epoch = self.conf_epoch;
                    self.request_sync(ctx, AfterSync::Installed { epoch });
                }
            }
            EngineState::No => {
                // CPCs delivered in the transitional configuration.
                self.cpc_received.insert(server);
                let members = current.members.clone();
                if members.iter().all(|m| self.cpc_received.contains(m)) {
                    self.state = EngineState::Un;
                }
            }
            _ => {
                ctx.trace_at(
                    TraceLevel::Debug,
                    "engine",
                    format!("CPC ignored in {:?}", self.state),
                );
            }
        }
    }

    /// `Install` (CodeSegment A.10).
    fn install(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(
            self.stashed.is_empty(),
            "stashed actions {:?} survive to install at {} — exchange targets missed",
            self.stashed.keys().collect::<Vec<_>>(),
            self.cfg.me
        );
        if self.yellow.valid {
            // OR-1.2: the previous primary already fixed these actions'
            // positions.
            let yellow_ids = std::mem::take(&mut self.yellow.set);
            for id in yellow_ids {
                let action = self
                    .actions
                    .get(&id)
                    .expect("yellow body present after exchange")
                    .clone();
                self.mark_green(ctx, &action);
            }
        }
        self.yellow = YellowRecord::invalid();
        self.prim_component.prim_index += 1;
        self.prim_component.attempt_index = self.attempt_index;
        self.prim_component.servers = self.vulnerable.set.clone();
        // The install re-bases the quorum membership. A member whose
        // leave went green during this very installation (via the
        // yellow/red conversion above) is still a view member, so it
        // lands in `servers` — but it exits the moment the install
        // completes and must not count toward future quorums. This is
        // agreed state: all members green the identical yellow/red sets
        // here, so they bake the identical discount.
        self.prim_component.departed = self
            .prim_component
            .servers
            .intersection(&self.departed_servers)
            .copied()
            .collect();
        self.attempt_index = 0;
        // OR-2: remaining red actions, ordered by action id.
        let reds: Vec<ActionId> = self.red_set.iter().copied().collect();
        for id in reds {
            let action = self.actions.get(&id).expect("red body present").clone();
            self.mark_green(ctx, &action);
        }
        // The install is an agreed deterministic computation: every
        // member greens the identical yellow/red sets above, so each
        // one's green line is known to land at this same count. Record
        // that and checkpoint, or the white line stays pinned at the
        // pre-install count until client traffic happens to advance it
        // — which never comes if a long partition left every replica
        // at its retention cap, wedging the whole system in
        // backpressure rejection.
        for m in &self.prim_component.servers {
            if !self.departed_servers.contains(m) {
                self.green_lines.insert(*m, self.green_count);
            }
        }
        if self.cfg.checkpoint_interval > 0 {
            self.checkpoint();
            self.note_retained(ctx);
        }
        self.stats.primaries_installed += 1;
        ctx.metrics().incr("engine.primaries_installed", 1);
        self.persist_membership_records();
        ctx.trace(
            "engine",
            format!(
                "{} installed primary #{} (attempt {}, members {:?})",
                self.cfg.me,
                self.prim_component.prim_index,
                self.prim_component.attempt_index,
                self.prim_component.servers
            ),
        );
    }

    // ============================================================
    // deliveries
    // ============================================================

    fn on_delivery(&mut self, ctx: &mut Ctx<'_>, delivery: todr_evs::Delivery) {
        let msg = delivery
            .payload
            .downcast_ref::<EngineMsg>()
            .expect("engine received a non-engine group message");
        match msg {
            EngineMsg::Action(action) => {
                let action = action.clone();
                self.on_action(ctx, action, delivery.in_transitional);
            }
            EngineMsg::State(sm) => self.on_state_msg(ctx, sm.clone()),
            EngineMsg::Cpc { server, conf } => self.on_cpc(ctx, *server, *conf),
            EngineMsg::Retrans { action, green_pos } => {
                let action = action.clone();
                let green_pos = *green_pos;
                match self.state {
                    EngineState::ExchangeActions | EngineState::NonPrim => {
                        self.on_retrans(ctx, action, green_pos)
                    }
                    _ => {
                        // Late retransmissions (e.g. delivered in a
                        // transitional batch after we aborted the
                        // exchange) still carry monotone knowledge.
                        self.on_retrans(ctx, action, green_pos)
                    }
                }
            }
            EngineMsg::GreenSnapshot {
                db,
                green_count,
                green_cut,
                green_lines,
            } => {
                let (db, green_count) = (db.clone(), *green_count);
                let (green_cut, green_lines) = (green_cut.clone(), green_lines.clone());
                self.on_green_snapshot(ctx, db, green_count, green_cut, green_lines);
            }
            EngineMsg::RetransDone { server } => {
                let server = *server;
                self.on_retrans_done(ctx, server);
            }
        }
    }

    fn on_action(&mut self, ctx: &mut Ctx<'_>, action: Action, in_transitional: bool) {
        match self.state {
            EngineState::RegPrim if !in_transitional => {
                // OR-1.1: safe delivery in the primary's regular
                // configuration -> green immediately.
                let creator = action.id.server;
                let creator_line = action.green_line;
                self.mark_green(ctx, &action);
                let entry = self.green_lines.entry(creator).or_insert(0);
                *entry = (*entry).max(creator_line);
            }
            EngineState::RegPrim | EngineState::TransPrim => {
                // Delivered in the transitional configuration of the
                // primary: order known, survival unknown.
                self.state = EngineState::TransPrim;
                #[cfg(feature = "chaos-mutations")]
                if self.cfg.chaos == Some(crate::types::ChaosMutation::PrematureGreen) {
                    // Injected bug: green without next-primary
                    // knowledge. The yellow color exists precisely
                    // because this is unsafe.
                    self.mark_green(ctx, &action);
                    return;
                }
                self.mark_yellow(ctx, &action);
            }
            EngineState::NonPrim | EngineState::ExchangeStates | EngineState::ExchangeActions => {
                self.mark_red(ctx, &action);
            }
            EngineState::Un => {
                // A.12: an action here proves some server installed the
                // primary and moved on; follow it.
                self.install(ctx);
                if self.departed {
                    return; // our own leave was among the converted reds
                }
                self.mark_yellow(ctx, &action);
                self.state = EngineState::TransPrim;
            }
            EngineState::No => {
                panic!(
                    "action delivered in No state at {} — violates total-order reasoning",
                    self.cfg.me
                );
            }
            EngineState::Construct => {
                panic!(
                    "action delivered in Construct state at {} — CPCs must precede it",
                    self.cfg.me
                );
            }
            EngineState::Down | EngineState::Joining => {}
        }
    }

    // ============================================================
    // commit fast path (CURP-style, gated on `EngineConfig::fast_path`)
    // ============================================================

    /// An eager EVS receipt: the message's agreed-order position is
    /// fixed and this daemon holds it, but safe delivery has not been
    /// announced yet. Receipts arrive in agreed order, one stability
    /// round before the corresponding [`Self::on_delivery`].
    ///
    /// In the regular primary configuration the receipt is this
    /// server's earliest proof an action exists, so it marks the action
    /// red immediately (the later safe delivery greens it as before).
    /// For another member's action it answers the origin with a
    /// point-to-point [`TransferWire::FastAck`]; for an own
    /// [`UpdateReplyPolicy::Fast`] action it runs the in-flight
    /// conflict check and either opens a [`FastPending`] quorum or
    /// demotes the request to the normal wait-for-green reply.
    fn on_receipt(&mut self, ctx: &mut Ctx<'_>, delivery: todr_evs::Delivery) {
        // Read leases consume receipts too: the park-behind-receipted-
        // writes check of `try_lease_read` needs every in-flight action
        // marked red at receipt time, even with the fast path off.
        if !(self.cfg.fast_path || self.cfg.read_leases)
            || self.state != EngineState::RegPrim
            || delivery.in_transitional
        {
            return;
        }
        let Some(EngineMsg::Action(action)) = delivery.payload.downcast_ref::<EngineMsg>() else {
            return; // exchange-phase traffic never fast-paths
        };
        let action = action.clone();
        if action.is_reconfiguration() {
            return; // joins/leaves always take the full green path
        }
        self.mark_red(ctx, &action);
        if !self.cfg.fast_path {
            return; // lease-only mode: receipts mark red, nothing else
        }
        let id = action.id;
        if id.server != self.cfg.me {
            // Tell the origin we hold the sequenced action. Direct
            // unicast: skips the coordinator round-trip *and* the
            // ack-batching delay of the stability protocol.
            self.send_transfer(ctx, id.server, TransferWire::FastAck { id });
            return;
        }
        // Own action coming back sequenced: decide its commit path.
        let wants_fast = self
            .pending_replies
            .get(&id)
            .is_some_and(|p| p.policy == UpdateReplyPolicy::Fast);
        if !wants_fast {
            return;
        }
        let ActionKind::App { query, update } = &action.kind else {
            return;
        };
        let class = classify(update, query.as_ref());
        if class.unbounded() || self.fast_conflict(&class, id) {
            self.stats.fast_demotions += 1;
            ctx.metrics().incr("engine.fast_demotions", 1);
            ctx.emit(ProtocolEvent::FastDemoted {
                node: self.cfg.me.index(),
                action_seq: id.index,
            });
            return; // pending reply stays; it fires on green
        }
        // Capture the answer now: the dirty view is the green prefix
        // plus every receipted in-flight action — i.e. the agreed order
        // up to this action, exactly. None of the in-flight actions
        // conflicts with this one, so their mutual order (and anything
        // sequenced later) cannot change this answer.
        let result = query.as_ref().map(|q| self.dirty_view().query(q));
        // Charge the check + read now so the CPU work overlaps the
        // FastAck round trip instead of serializing behind it.
        let ready_at = self.cpu.charge(ctx.now(), self.cfg.cpu_per_action / 4);
        let me = self.cfg.me;
        self.pending_fast.insert(
            id,
            FastPending {
                ackers: BTreeSet::from([me]),
                result,
                ready_at,
            },
        );
        // A single-member primary is its own quorum.
        self.try_fast_commit(ctx, id);
    }

    /// Whether `class` conflicts with any in-flight (red or
    /// yellow-not-green) action from a *different* creator. Same-creator
    /// actions are skipped: per-creator FIFO fixes their order relative
    /// to this action on every path, so they are not a reordering
    /// hazard. Conservative: an in-flight body that is not a plain app
    /// action (or is missing) counts as conflicting.
    fn fast_conflict(&self, class: &ActionClass, id: ActionId) -> bool {
        #[cfg(feature = "chaos-mutations")]
        if self.cfg.chaos == Some(crate::types::ChaosMutation::SkipConflictCheck) {
            // Injected bug: promise the fast commit regardless of what
            // is in flight. The FastCommitRevoked oracle must catch the
            // reply this issues against a conflicting concurrent action.
            return false;
        }
        self.red_set
            .iter()
            .chain(self.yellow.set.iter())
            .filter(|other| other.server != id.server)
            .any(|other| match self.actions.get(other).map(|a| &a.kind) {
                Some(ActionKind::App { query, update }) => {
                    conflicts(class, &classify(update, query.as_ref()))
                }
                _ => true,
            })
    }

    /// Issues the fast commit if the ackers of `id` form a weighted
    /// quorum of the current primary component.
    fn try_fast_commit(&mut self, ctx: &mut Ctx<'_>, id: ActionId) {
        let Some(fp) = self.pending_fast.get(&id) else {
            return;
        };
        let ackers: Vec<NodeId> = fp.ackers.iter().copied().collect();
        let quorum_ok = if self.cfg.read_leases {
            // With read leases active, a fast quorum is not enough: any
            // member could answer a lease read for this row the instant
            // the client learns of the commit, so *every* member of the
            // current configuration must hold the action first. (Members
            // of older configurations cannot: their lease died at least
            // `fail_timeout - 2·hb - lease_duration` before this
            // configuration could have installed.)
            match &self.conf {
                Some(conf) => conf.members.iter().all(|m| fp.ackers.contains(m)),
                None => false,
            }
        } else {
            is_weighted_quorum(&ackers, &self.prim_component, &self.cfg.weights)
        };
        if !quorum_ok {
            return;
        }
        let fp = self.pending_fast.remove(&id).expect("just present");
        let Some(p) = self.pending_replies.remove(&id) else {
            return;
        };
        self.stats.fast_commits += 1;
        ctx.metrics().incr("engine.fast_commits", 1);
        let latency = ctx.now().saturating_since(p.submitted_at);
        ctx.metrics().observe("engine.fast_commit_latency", latency);
        let client = self
            .actions
            .get(&id)
            .map(|a| a.client.0 as u64)
            .unwrap_or(0);
        ctx.emit(ProtocolEvent::FastCommit {
            node: self.cfg.me.index(),
            action_seq: id.index,
        });
        ctx.emit(ProtocolEvent::ClientCommit {
            client,
            latency_nanos: latency.as_nanos(),
        });
        if let Some(action) = self.actions.get(&id).cloned() {
            self.note_update_acked(ctx, &action);
        }
        // The reply doesn't execute the update — that happens at green
        // apply on every replica regardless — and its own CPU cost (the
        // conflict check + dirty-view read) was charged at receipt time,
        // overlapped with the FastAck round trip.
        let at = fp.ready_at;
        self.reply(
            ctx,
            at,
            p.reply_to,
            ClientReply::Committed {
                request: p.request,
                action: id,
                result: fp.result,
                submitted_at: p.submitted_at,
                green_seq: 0, // replied before global ordering
            },
        );
    }

    /// A peer acknowledged holding one of our sequenced fast-path
    /// actions.
    fn on_fast_ack(&mut self, ctx: &mut Ctx<'_>, src: NodeId, id: ActionId) {
        if !self.cfg.fast_path || self.state != EngineState::RegPrim {
            return; // stale ack from before a view change
        }
        let Some(fp) = self.pending_fast.get_mut(&id) else {
            return; // demoted, already committed, or cleared
        };
        fp.ackers.insert(src);
        self.try_fast_commit(ctx, id);
    }

    // ============================================================
    // disk completions
    // ============================================================

    fn on_disk_done(&mut self, ctx: &mut Ctx<'_>, token: SyncToken) {
        // Only a completion we are actually waiting on may promote the
        // staged mutations: a stale token (from before a crash) reports
        // a write whose platter sync never happened, and committing on
        // it would make the store claim durability for lost data.
        let Some(after) = self.pending_syncs.remove(&token) else {
            return; // completion from before a crash
        };
        // A backend I/O failure here means the host disk broke under
        // us — there is no protocol-level answer to that, so stop hard
        // rather than acknowledge durability that does not exist.
        self.store
            .commit_staged()
            .expect("storage backend failed to persist staged state");
        match after {
            AfterSync::Submit(actions) => {
                self.submit_inflight = false;
                if matches!(self.state, EngineState::RegPrim | EngineState::NonPrim) {
                    for action in actions {
                        let size = action.size_bytes;
                        self.send_group(ctx, EngineMsg::Action(action), size);
                    }
                    self.flush_submit_queue(ctx);
                } else {
                    // A configuration change overtook this forced
                    // write. The actions are durable in `ongoing`, but
                    // generating them now would inject an action into
                    // the new configuration's agreed sequence *after*
                    // our state message — a member already in
                    // `Construct` could then deliver it before the full
                    // CPC set. Hold them until the next install.
                    ctx.trace_at(
                        TraceLevel::Debug,
                        "engine",
                        format!(
                            "{} deferring {} submitted action(s) across a view change",
                            self.cfg.me,
                            actions.len()
                        ),
                    );
                    self.deferred_submits.extend(actions);
                }
            }
            AfterSync::SendState { epoch } => {
                if epoch == self.conf_epoch && self.state == EngineState::ExchangeStates {
                    let sm = self.my_state_msg();
                    let size = self.cfg.state_msg_bytes
                        + (sm.progress.red_cut.len() as u32) * 12
                        + (sm.yellow.set.len() as u32) * 12;
                    self.send_group(ctx, EngineMsg::State(sm), size);
                }
            }
            AfterSync::SendCpc { epoch } => {
                if epoch == self.conf_epoch && self.state == EngineState::Construct {
                    let conf = self.conf.as_ref().expect("in a configuration").id;
                    let me = self.cfg.me;
                    let size = self.cfg.cpc_msg_bytes;
                    self.send_group(ctx, EngineMsg::Cpc { server: me, conf }, size);
                }
            }
            AfterSync::Installed { epoch } | AfterSync::EnterNonPrim { epoch } => {
                if epoch == self.conf_epoch
                    && matches!(self.state, EngineState::RegPrim | EngineState::NonPrim)
                {
                    self.handle_buffered(ctx);
                }
            }
            AfterSync::JoinedReady => {
                if self.state == EngineState::Joining {
                    self.state = EngineState::NonPrim;
                    ctx.send_now(self.evs, EvsCmd::JoinGroup);
                    ctx.trace(
                        "engine",
                        format!("{} finished bootstrap, joining group", self.cfg.me),
                    );
                }
            }
            AfterSync::Noop => {}
        }
    }

    // ============================================================
    // control: crash / recovery / join / leave
    // ============================================================

    fn on_ctl(&mut self, ctx: &mut Ctx<'_>, ctl: EngineCtl) {
        match ctl {
            EngineCtl::Crash => self.crash(ctx, false),
            EngineCtl::CrashTorn => self.crash(ctx, true),
            EngineCtl::Recover => self.recover(ctx),
            EngineCtl::InjectFault { fault } => self.inject_fault(ctx, fault),
            EngineCtl::StartJoin { via } => self.start_join(ctx, via),
            EngineCtl::Leave => {
                if matches!(self.state, EngineState::RegPrim | EngineState::NonPrim) {
                    self.generate_internal_action(
                        ctx,
                        ActionKind::PersistentLeave {
                            leaver: self.cfg.me,
                        },
                    );
                }
            }
            EngineCtl::RemoveReplica { dead } => {
                if matches!(self.state, EngineState::RegPrim | EngineState::NonPrim) {
                    self.generate_internal_action(
                        ctx,
                        ActionKind::PersistentLeave { leaver: dead },
                    );
                }
            }
        }
    }

    fn generate_internal_action(&mut self, ctx: &mut Ctx<'_>, kind: ActionKind) {
        self.action_index += 1;
        let action = Action {
            id: ActionId {
                server: self.cfg.me,
                index: self.action_index,
            },
            green_line: self.green_count,
            client: ClientId(0),
            kind,
            size_bytes: 64,
        };
        self.stats.actions_created += 1;
        ctx.metrics().incr("engine.actions_created", 1);
        ctx.emit(ProtocolEvent::ActionCreated {
            node: self.cfg.me.index(),
            action_seq: action.id.index,
        });
        self.ongoing.insert(action.id.index, action.clone());
        self.persist_ongoing();
        self.submit_queue.push(action);
        self.flush_submit_queue(ctx);
    }

    fn crash(&mut self, ctx: &mut Ctx<'_>, torn: bool) {
        ctx.trace(
            "engine",
            format!(
                "{} crashed{}",
                self.cfg.me,
                if torn { " (torn write)" } else { "" }
            ),
        );
        ctx.emit(ProtocolEvent::EngineCrashed {
            node: self.cfg.me.index(),
        });
        // Revoke the read lease while the pre-crash state is still
        // visible (counts an expiration if it was live).
        self.expire_lease(ctx);
        if torn {
            self.store.crash_torn(ctx.fault_rng());
            ctx.metrics().incr("storage.torn_crashes", 1);
        } else {
            self.store.crash();
        }
        self.state = EngineState::Down;
        self.actions.clear();
        self.green_count = 0;
        self.green_floor = 0;
        self.green_tail.clear();
        self.green_cut.clear();
        self.red_set.clear();
        self.red_cut.clear();
        self.stashed.clear();
        self.green_lines.clear();
        self.departed_servers.clear();
        self.db = Database::new();
        self.dirty_db = None;
        self.conf = None;
        self.conf_epoch += 1;
        self.state_msgs.clear();
        self.plan = None;
        self.retrans_done.clear();
        self.cpc_received.clear();
        self.pending_replies.clear();
        self.pending_fast.clear();
        self.buffered_reqs.clear();
        self.parked_strict.clear();
        self.parked_lease.clear();
        self.lease_epoch = 0;
        self.lease_expiry = SimTime::ZERO;
        self.pending_syncs.clear();
        self.pending_joins.clear();
        self.cpu.reset();
        self.ongoing.clear();
        self.submit_queue.clear();
        self.submit_inflight = false;
        self.deferred_submits.clear();
        self.last_green_charge = None;
        self.green_burst_len = 0;
        // prim_component / vulnerable / yellow / attempt / action_index
        // are reloaded from stable storage on recovery.
    }

    /// Damages the persisted log in place ([`EngineCtl::InjectFault`]).
    /// Latent: nothing notices until the next recovery scan.
    fn inject_fault(&mut self, ctx: &mut Ctx<'_>, fault: StorageFault) {
        let injected = match fault {
            StorageFault::BitFlip => self.store.inject_bit_flip(ctx.fault_rng()),
            StorageFault::StaleSector => self.store.inject_stale_sector(ctx.fault_rng()),
        };
        if let Some(hit) = injected {
            ctx.metrics().incr("storage.faults_injected", 1);
            ctx.trace(
                "engine",
                format!(
                    "{} storage fault injected: {fault:?} at log record {}",
                    self.cfg.me, hit.index
                ),
            );
        }
    }

    /// Whether recovery runs the log integrity scan. Always true except
    /// under the `SkipChecksumVerify` chaos mutation, which models a
    /// recovery path that trusts the medium blindly.
    fn verify_on_recovery(&self) -> bool {
        #[cfg(feature = "chaos-mutations")]
        {
            self.cfg.chaos != Some(crate::types::ChaosMutation::SkipChecksumVerify)
        }
        #[cfg(not(feature = "chaos-mutations"))]
        {
            true
        }
    }

    /// Recovery found corruption it cannot repair: refuse to rejoin.
    /// Rejoining with silently wrong state could vote a fork into the
    /// primary component; staying [`EngineState::Down`] only costs this
    /// replica's availability.
    fn fail_stop(&mut self, ctx: &mut Ctx<'_>, error: RecoveryError) {
        ctx.metrics().incr("storage.corruption_failstops", 1);
        ctx.emit(ProtocolEvent::CorruptionDetected {
            node: self.cfg.me.index(),
            log_index: error.log_index(),
        });
        ctx.trace_at(
            TraceLevel::Warn,
            "engine",
            format!("{} fail-stop on recovery: {error}", self.cfg.me),
        );
        self.recovery_error = Some(error);
        self.state = EngineState::Down;
    }

    /// `Recover` (CodeSegment A.13), hardened: before replaying the
    /// log, scan it for invalid records. A fault confined to the final
    /// record is the expected torn write — the interrupted append was
    /// never acknowledged durable, so truncating it loses only
    /// `vulnerable`/red actions that the exchange protocol re-fetches
    /// from peers on rejoin. A fault anywhere earlier means
    /// acknowledged data is gone and the replica fail-stops.
    fn recover(&mut self, ctx: &mut Ctx<'_>) {
        if self.departed {
            return; // permanently removed replicas stay down
        }
        let verify = self.verify_on_recovery();
        if verify {
            if let Err(fault) = self.store.verify_log() {
                let is_tail = fault.index + 1 == self.store.log_len() as u64;
                if is_tail && fault.kind == LogFaultKind::Checksum {
                    self.store.truncate_log_from(fault.index);
                    ctx.metrics().incr("storage.torn_tails_truncated", 1);
                    ctx.emit(ProtocolEvent::TornTailTruncated {
                        node: self.cfg.me.index(),
                        log_index: fault.index,
                    });
                    ctx.trace(
                        "engine",
                        format!(
                            "{} truncated torn log tail at record {}",
                            self.cfg.me, fault.index
                        ),
                    );
                } else {
                    // Mid-log corruption, or an epoch regression (stale
                    // sector) even at the tail: a tail record from the
                    // wrong incarnation was once acknowledged durable.
                    self.fail_stop(
                        ctx,
                        RecoveryError::MidLogFault {
                            index: fault.index,
                            detail: fault.to_string(),
                        },
                    );
                    return;
                }
            }
        }
        let persisted = match persist::load(&self.store) {
            Ok(persisted) => persisted,
            Err(RecoveryError::UndecodableEntry { index }) if !verify => {
                // The mutated lenient path: entries that do not decode
                // are silently dropped from that point on and recovery
                // carries on with whatever decoded — no integrity scan,
                // no fail-stop. (Stale sectors decode fine, so they
                // replay as duplicates; the durability oracle's job.)
                self.store.truncate_log_from(index);
                match persist::load(&self.store) {
                    Ok(persisted) => persisted,
                    Err(error) => {
                        self.fail_stop(ctx, error);
                        return;
                    }
                }
            }
            Err(error) => {
                self.fail_stop(ctx, error);
                return;
            }
        };
        self.recovery_error = None;

        // Seal the new incarnation into the store: every record
        // appended from now on carries this epoch, so a future recovery
        // can spot sectors served from a previous life.
        let incarnation = match self.store.get_record::<u64>(persist::K_INCARNATION) {
            Ok(previous) => previous.unwrap_or(0) + 1,
            Err(e) if verify => {
                self.fail_stop(
                    ctx,
                    RecoveryError::CorruptRecord {
                        key: persist::K_INCARNATION.to_string(),
                        detail: e.to_string(),
                    },
                );
                return;
            }
            Err(_) => 1,
        };
        self.store
            .put_record(persist::K_INCARNATION, &incarnation)
            .expect("u64 serializes");
        self.store.set_epoch(incarnation);

        self.actions = persisted.actions;
        self.green_floor = persisted.base.green_count;
        self.green_count = persisted.base.green_count + persisted.green_tail.len() as u64;
        self.green_tail = persisted.green_tail;
        self.green_cut = persisted.green_cut;
        self.red_set = persisted.red_set;
        self.red_cut = persisted.red_cut;
        self.green_lines = persisted.green_lines;
        if let Some(prim) = persisted.prim_component {
            self.prim_component = prim;
        }
        self.attempt_index = persisted.attempt_index;
        self.vulnerable = persisted.vulnerable;
        self.yellow = persisted.yellow;
        self.action_index = persisted.action_index;
        self.ongoing = persisted
            .ongoing
            .into_iter()
            .map(|a| (a.id.index, a))
            .collect();
        if !persisted.server_set.is_empty() {
            self.server_set = persisted.server_set;
        }

        // Rebuild the green database: base + green tail replay.
        self.db = persisted.base.db;
        let tail = self.green_tail.clone();
        for id in tail {
            if let Some(ActionKind::App { update, .. }) =
                self.actions.get(&id).map(|a| a.kind.clone())
            {
                self.db.apply(&update);
            }
        }
        self.dirty_db = None;
        self.green_lines.insert(self.cfg.me, self.green_count);

        // Re-accept own unacknowledged actions (A.13).
        let ongoing: Vec<Action> = self.ongoing.values().cloned().collect();
        for action in ongoing {
            let have = self.red_cut.get(&action.id.server).copied().unwrap_or(0);
            if have < action.id.index {
                self.mark_red(ctx, &action);
            }
        }
        self.state = EngineState::NonPrim;
        self.persist_membership_records();
        self.persist_ongoing();
        self.request_sync(ctx, AfterSync::Noop);
        ctx.send_now(self.evs, EvsCmd::Restart);
        ctx.trace(
            "engine",
            format!(
                "{} recovered: green {}, red {}, vulnerable {}",
                self.cfg.me,
                self.green_count,
                self.red_set.len(),
                self.vulnerable.valid
            ),
        );
        ctx.emit(ProtocolEvent::EngineRecovered {
            node: self.cfg.me.index(),
            green: self.green_count,
        });
    }

    /// CodeSegment 5.2: the joining site's bootstrap.
    fn start_join(&mut self, ctx: &mut Ctx<'_>, via: NodeId) {
        self.state = EngineState::Joining;
        self.join_targets = self.cfg.server_set.clone();
        if let Some(pos) = self.join_targets.iter().position(|&n| n == via) {
            self.join_targets.swap(0, pos);
        }
        self.join_target_idx = 0;
        let me = self.cfg.me;
        self.send_transfer(ctx, via, TransferWire::JoinRequest { joiner: me });
        ctx.send_self_after(SimDuration::from_millis(500), JoinRetry);
    }

    fn on_join_retry(&mut self, ctx: &mut Ctx<'_>) {
        if self.state != EngineState::Joining || self.join_targets.is_empty() {
            return;
        }
        // "If the initial peer fails or a network partition occurs
        // before the transfer is finished, the new server will try to
        // establish a connection with a different member" (§5.1).
        self.join_target_idx = (self.join_target_idx + 1) % self.join_targets.len();
        let target = self.join_targets[self.join_target_idx];
        let me = self.cfg.me;
        self.send_transfer(ctx, target, TransferWire::JoinRequest { joiner: me });
        ctx.send_self_after(SimDuration::from_millis(500), JoinRetry);
    }

    fn on_transfer(&mut self, ctx: &mut Ctx<'_>, src: NodeId, wire: &TransferWire) {
        match wire {
            TransferWire::JoinRequest { joiner } => {
                let joiner = *joiner;
                if !matches!(self.state, EngineState::RegPrim | EngineState::NonPrim) {
                    return; // not in a position to represent anyone
                }
                if self.server_set.contains(&joiner) {
                    // Join already ordered: resume/redo the transfer
                    // from current state (line 21).
                    self.send_snapshot_to(ctx, joiner);
                } else if self.pending_joins.insert(joiner) {
                    // Announce the newcomer (lines 17-19); duplicate
                    // bootstrap retries while our announcement is still
                    // in flight are absorbed here, and late duplicate
                    // announcements from other representatives are
                    // ignored when they turn green (CodeSegment 5.1).
                    self.generate_internal_action(ctx, ActionKind::PersistentJoin { joiner });
                }
            }
            TransferWire::FastAck { id } => self.on_fast_ack(ctx, src, *id),
            TransferWire::Snapshot {
                db,
                green_count,
                green_lines,
                red_cut,
                server_set,
                prim_component,
                action_index,
            } => {
                if self.state != EngineState::Joining {
                    return;
                }
                ctx.trace(
                    "engine",
                    format!(
                        "{} received transfer from {} at green {}",
                        self.cfg.me, src, green_count
                    ),
                );
                self.adopt_base(db.clone(), *green_count, red_cut.clone());
                self.green_lines = green_lines.clone();
                self.green_lines.insert(self.cfg.me, self.green_count);
                self.server_set = server_set.clone();
                self.server_set.insert(self.cfg.me);
                self.prim_component = prim_component.clone();
                self.action_index = (*action_index).max(self.action_index);
                self.persist_membership_records();
                self.persist_ongoing();
                // Persist the inherited state, then join the group.
                self.request_sync(ctx, AfterSync::JoinedReady);
            }
        }
    }
}

impl Actor for ReplicationEngine {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.try_downcast::<EvsEvent>() {
            Ok(event) => {
                if self.state == EngineState::Down {
                    return;
                }
                match event {
                    EvsEvent::RegConf(conf) => self.on_reg_conf(ctx, conf),
                    EvsEvent::TransConf(_) => self.on_trans_conf(ctx),
                    EvsEvent::Deliver(d) => self.on_delivery(ctx, d),
                    EvsEvent::Receipt(d) => self.on_receipt(ctx, d),
                    EvsEvent::LeaseRenew(conf_id) => self.on_lease_renew(ctx, conf_id),
                }
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.try_downcast::<DiskDone>() {
            Ok(done) => {
                if self.state != EngineState::Down {
                    self.on_disk_done(ctx, done.token);
                }
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.try_downcast::<ClientRequest>() {
            Ok(req) => {
                self.on_client_request(ctx, req);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.try_downcast::<Datagram>() {
            Ok(dgram) => {
                if self.state == EngineState::Down {
                    return;
                }
                if let Some(wire) = dgram.payload.downcast_ref::<TransferWire>() {
                    self.on_transfer(ctx, dgram.src, wire);
                }
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.try_downcast::<JoinRetry>() {
            Ok(_) => {
                self.on_join_retry(ctx);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<EngineCtl>() {
            Some(ctl) => self.on_ctl(ctx, ctl),
            None => panic!("ReplicationEngine received an unknown payload type"),
        }
    }
}

impl std::fmt::Debug for ReplicationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationEngine")
            .field("me", &self.cfg.me)
            .field("state", &self.state)
            .field("green", &self.green_count)
            .field("red", &self.red_set.len())
            .field("prim", &self.prim_component.prim_index)
            .finish_non_exhaustive()
    }
}
