//! Application-semantics knobs (§6 of the paper).
//!
//! The engine enforces one-copy serializability by default: updates are
//! acknowledged when green, queries are answered from green state in the
//! primary component. Applications that can tolerate weaker guarantees
//! opt in per request:
//!
//! * **weak queries** read the green (consistent but possibly obsolete)
//!   state even in a non-primary component;
//! * **dirty queries** additionally see the red actions known locally;
//! * **timestamp / commutative updates** are acknowledged as soon as the
//!   action is red — the database states converge once partitions heal,
//!   because such updates are order-insensitive ([`todr_db::Op::TsPut`],
//!   [`todr_db::Op::Incr`]).

use serde::{Deserialize, Serialize};

/// How the query part of a request is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QuerySemantics {
    /// One-copy serializable: answered in the primary component when the
    /// action is ordered; waits (or is rejected) in a non-primary
    /// component.
    #[default]
    Strict,
    /// Answered immediately from the green state, which may be obsolete
    /// in a non-primary component.
    Weak,
    /// Answered immediately from the green state *plus* locally known
    /// red actions (the "dirty version" of the database).
    Dirty,
}

/// When the update part of a request is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum UpdateReplyPolicy {
    /// When the action is green (global persistent order) — the strict
    /// model.
    #[default]
    OnGreen,
    /// When the action is locally ordered (red). Only sound for
    /// commutative or timestamped updates; the engine still propagates
    /// and orders the action, so states converge after merges.
    OnRed,
    /// The commit fast path: acknowledged as soon as (a) the action is
    /// forced to local stable storage, (b) a weighted quorum of the
    /// current primary component holds the sequenced action (FastAck
    /// receipts), and (c) it conflicts with no in-flight (red or
    /// yellow-not-green) action at the origin. If a conflict is
    /// detected the request silently *demotes* to [`Self::OnGreen`]
    /// behaviour — same reply, just later. Requires
    /// [`EngineConfig::fast_path`](crate::EngineConfig); sound for any
    /// bounded-footprint action because the quorum of holders
    /// guarantees the action survives into every subsequent primary
    /// component ahead of anything not yet sequenced.
    Fast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_strict() {
        assert_eq!(QuerySemantics::default(), QuerySemantics::Strict);
        assert_eq!(UpdateReplyPolicy::default(), UpdateReplyPolicy::OnGreen);
    }
}
