//! What the engine writes to stable storage and how it recovers.
//!
//! The engine persists two kinds of data through its
//! [`StorageHandle`] (any [`todr_storage::Storage`] backend):
//!
//! * an **append-only log** of [`PersistEntry`] values — every action
//!   body once (when first accepted, i.e. marked red) and every green
//!   transition (by id);
//! * small **records**: the primary component, the attempt index, the
//!   vulnerable and yellow records, green lines, the server set, the
//!   creator counter and the `ongoingQueue`.
//!
//! All writes are staged; the engine's `** sync to disk` points request a
//! forced write from the [`DiskActor`](todr_storage::DiskActor) and the
//! staging area is committed when the platter write completes. A crash
//! discards staged data, so recovery sees exactly the state as of the
//! last completed sync — which is the assumption the paper's recovery
//! procedure (Appendix A, CodeSegment A.13) is built on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use todr_net::NodeId;
use todr_storage::StorageHandle;

use crate::action::{Action, ActionId};
use crate::quorum::{PrimComponent, VulnerableRecord, YellowRecord};

/// Why recovery could not reconstruct a usable state from stable
/// storage.
///
/// Produced by the recovery scan when the persisted image fails
/// validation. The engine maps storage-level [`todr_storage::LogFault`]s
/// onto this too: a fault confined to the final log record is repaired
/// by truncation (the paper's `vulnerable`-record argument makes a lost
/// red tail recoverable from peers), anything earlier fail-stops the
/// replica with one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A named record's bytes failed to deserialize.
    CorruptRecord {
        /// The record key.
        key: String,
        /// Codec-level detail.
        detail: String,
    },
    /// A log entry's bytes failed to deserialize as a log entry.
    UndecodableEntry {
        /// Zero-based index of the offending log entry.
        index: u64,
    },
    /// The log failed its integrity scan (checksum mismatch or
    /// incarnation-epoch regression) somewhere other than the
    /// truncatable tail.
    MidLogFault {
        /// Zero-based index of the first invalid log record.
        index: u64,
        /// Human-readable description of the fault.
        detail: String,
    },
}

impl RecoveryError {
    /// The log index the error points at, when it concerns the log.
    pub fn log_index(&self) -> Option<u64> {
        match self {
            RecoveryError::CorruptRecord { .. } => None,
            RecoveryError::UndecodableEntry { index }
            | RecoveryError::MidLogFault { index, .. } => Some(*index),
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::CorruptRecord { key, detail } => {
                write!(f, "record {key:?} is corrupt: {detail}")
            }
            RecoveryError::UndecodableEntry { index } => {
                write!(f, "log entry {index} does not decode")
            }
            RecoveryError::MidLogFault { index, detail } => {
                write!(f, "log integrity fault at entry {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// One entry in the persisted action log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum PersistEntry {
    /// An action body, logged when the action is first accepted.
    Accepted(Action),
    /// The action became green (global order position implied by entry
    /// order).
    Green(ActionId),
}

/// The base image a server's log builds on: empty for original members;
/// replaced when a server bootstraps from a snapshot (online join, or a
/// green-state snapshot received during exchange). The action log is
/// truncated when the base is written, so recovery = base + log replay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct BaseRecord {
    /// Green database state.
    pub db: todr_db::Database,
    /// Green actions incorporated in `db`.
    pub green_count: u64,
    /// Per creator, the highest action index incorporated in `db`.
    pub green_cut: BTreeMap<NodeId, u64>,
}

/// Record keys.
pub(crate) const K_BASE: &str = "base";
pub(crate) const K_PRIM: &str = "prim_component";
pub(crate) const K_ATTEMPT: &str = "attempt_index";
pub(crate) const K_VULNERABLE: &str = "vulnerable";
pub(crate) const K_YELLOW: &str = "yellow";
pub(crate) const K_GREEN_LINES: &str = "green_lines";
pub(crate) const K_SERVER_SET: &str = "server_set";
pub(crate) const K_ACTION_INDEX: &str = "action_index";
pub(crate) const K_ONGOING: &str = "ongoing";
pub(crate) const K_INCARNATION: &str = "incarnation";

/// Everything recovery can reconstruct from a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PersistedState {
    /// The base image (see [`BaseRecord`]).
    pub base: BaseRecord,
    pub actions: BTreeMap<ActionId, Action>,
    /// Green tail: ids of green actions *after* the base, in order
    /// (position `base.green_count + i`).
    pub green_tail: Vec<ActionId>,
    /// Red actions (accepted, not green), in `ActionId` order.
    pub red_set: BTreeSet<ActionId>,
    /// Per creator, highest contiguous accepted index.
    pub red_cut: BTreeMap<NodeId, u64>,
    /// Per creator, highest green action index.
    pub green_cut: BTreeMap<NodeId, u64>,
    pub prim_component: Option<PrimComponent>,
    pub attempt_index: u64,
    pub vulnerable: VulnerableRecord,
    pub yellow: YellowRecord,
    pub green_lines: BTreeMap<NodeId, u64>,
    pub server_set: BTreeSet<NodeId>,
    pub action_index: u64,
    pub ongoing: Vec<Action>,
}

/// Reads the persisted image back (after a simulated crash).
///
/// # Errors
///
/// Returns a [`RecoveryError`] when a named record or a log entry fails
/// to deserialize. With fault injection off this would be an engine
/// bug; with it on, it is the environmental condition the recovery
/// protocol exists for — the caller decides between tail truncation
/// and fail-stop.
pub(crate) fn load(store: &StorageHandle) -> Result<PersistedState, RecoveryError> {
    fn record<T: DeserializeOwned>(
        store: &StorageHandle,
        key: &str,
    ) -> Result<Option<T>, RecoveryError> {
        store
            .get_record(key)
            .map_err(|e| RecoveryError::CorruptRecord {
                key: key.to_string(),
                detail: e.to_string(),
            })
    }
    let base: BaseRecord = record(store, K_BASE)?.unwrap_or_default();
    let log = store.read_log();
    let mut entries: Vec<PersistEntry> = Vec::with_capacity(log.len());
    for (index, record) in log.iter().enumerate() {
        // The log codec is the store's deterministic JSON.
        let entry = serde::json::from_slice(&record.bytes).map_err(|_| {
            RecoveryError::UndecodableEntry {
                index: index as u64,
            }
        })?;
        entries.push(entry);
    }
    let mut actions = BTreeMap::new();
    let mut green_tail = Vec::new();
    let mut red_set = BTreeSet::new();
    let mut red_cut: BTreeMap<NodeId, u64> = base.green_cut.clone();
    let mut green_cut: BTreeMap<NodeId, u64> = base.green_cut.clone();
    for entry in entries {
        match entry {
            PersistEntry::Accepted(action) => {
                let id = action.id;
                let cut = red_cut.entry(id.server).or_insert(0);
                debug_assert_eq!(*cut + 1, id.index, "non-contiguous persisted log");
                *cut = id.index;
                red_set.insert(id);
                actions.insert(id, action);
            }
            PersistEntry::Green(id) => {
                red_set.remove(&id);
                let cut = green_cut.entry(id.server).or_insert(0);
                debug_assert!(*cut < id.index, "green regression in persisted log");
                *cut = id.index;
                green_tail.push(id);
            }
        }
    }

    Ok(PersistedState {
        base,
        actions,
        green_tail,
        red_set,
        red_cut,
        green_cut,
        prim_component: record(store, K_PRIM)?,
        attempt_index: record(store, K_ATTEMPT)?.unwrap_or(0),
        vulnerable: record(store, K_VULNERABLE)?.unwrap_or_else(VulnerableRecord::invalid),
        yellow: record(store, K_YELLOW)?.unwrap_or_else(YellowRecord::invalid),
        green_lines: record(store, K_GREEN_LINES)?.unwrap_or_default(),
        server_set: record(store, K_SERVER_SET)?.unwrap_or_default(),
        action_index: record(store, K_ACTION_INDEX)?.unwrap_or(0),
        ongoing: record(store, K_ONGOING)?.unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionKind, ClientId};
    use todr_db::Op;

    fn action(server: u32, index: u64) -> Action {
        Action {
            id: ActionId {
                server: NodeId::new(server),
                index,
            },
            green_line: 0,
            client: ClientId(1),
            kind: ActionKind::App {
                query: None,
                update: Op::put("t", format!("{server}-{index}"), 1i64),
            },
            size_bytes: 200,
        }
    }

    #[test]
    fn load_from_empty_store_gives_defaults() {
        let store = StorageHandle::sim();
        let st = load(&store).expect("empty store loads");
        assert!(st.actions.is_empty());
        assert!(st.green_tail.is_empty());
        assert_eq!(st.attempt_index, 0);
        assert!(!st.vulnerable.valid);
        assert_eq!(st.action_index, 0);
    }

    #[test]
    fn log_replay_rebuilds_colors() {
        let mut store = StorageHandle::sim();
        let a1 = action(0, 1);
        let a2 = action(0, 2);
        let b1 = action(1, 1);
        store
            .append_log_typed(&PersistEntry::Accepted(a1.clone()))
            .unwrap();
        store
            .append_log_typed(&PersistEntry::Accepted(b1.clone()))
            .unwrap();
        store.append_log_typed(&PersistEntry::Green(a1.id)).unwrap();
        store
            .append_log_typed(&PersistEntry::Accepted(a2.clone()))
            .unwrap();
        store.commit_staged().unwrap();
        let st = load(&store).expect("clean log loads");
        assert_eq!(st.green_tail, vec![a1.id]);
        assert_eq!(
            st.red_set.iter().copied().collect::<Vec<_>>(),
            vec![a2.id, b1.id] // ActionId order: (n0,2) < (n1,1)
        );
        assert_eq!(st.red_cut[&NodeId::new(0)], 2);
        assert_eq!(st.red_cut[&NodeId::new(1)], 1);
        assert_eq!(st.actions.len(), 3);
    }

    #[test]
    fn staged_entries_vanish_on_crash() {
        let mut store = StorageHandle::sim();
        store
            .append_log_typed(&PersistEntry::Accepted(action(0, 1)))
            .unwrap();
        store.commit_staged().unwrap();
        store
            .append_log_typed(&PersistEntry::Accepted(action(0, 2)))
            .unwrap();
        store.crash();
        let st = load(&store).expect("clean log loads");
        assert_eq!(st.actions.len(), 1);
        assert_eq!(st.red_cut[&NodeId::new(0)], 1);
    }

    #[test]
    fn records_roundtrip() {
        let mut store = StorageHandle::sim();
        let prim = PrimComponent::initial((0..3).map(NodeId::new));
        store.put_record(K_PRIM, &prim).unwrap();
        store.put_record(K_ATTEMPT, &7u64).unwrap();
        let vul = VulnerableRecord::new_attempt(1, 2, (0..2).map(NodeId::new));
        store.put_record(K_VULNERABLE, &vul).unwrap();
        store.put_record(K_ONGOING, &vec![action(0, 1)]).unwrap();
        store.commit_staged().unwrap();
        let st = load(&store).expect("clean records load");
        assert_eq!(st.prim_component, Some(prim));
        assert_eq!(st.attempt_index, 7);
        assert_eq!(st.vulnerable, vul);
        assert_eq!(st.ongoing.len(), 1);
    }

    #[test]
    fn undecodable_log_entry_reports_its_index() {
        let mut store = StorageHandle::sim();
        store
            .append_log_typed(&PersistEntry::Accepted(action(0, 1)))
            .unwrap();
        store.append_log(b"{ not a persist entry".to_vec());
        store.commit_staged().unwrap();
        assert_eq!(
            load(&store).expect_err("garbage entry must not load"),
            RecoveryError::UndecodableEntry { index: 1 }
        );
    }

    #[test]
    fn corrupt_named_record_reports_its_key() {
        let mut store = StorageHandle::sim();
        store
            .put_record(K_ATTEMPT, &"not a u64".to_string())
            .unwrap();
        store.commit_staged().unwrap();
        let err = load(&store).expect_err("corrupt record must not load");
        match err {
            RecoveryError::CorruptRecord { key, .. } => assert_eq!(key, K_ATTEMPT),
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(err_log_index(&store), None);
    }

    fn err_log_index(store: &StorageHandle) -> Option<u64> {
        load(store).expect_err("still corrupt").log_index()
    }

    #[test]
    fn truncating_an_undecodable_tail_makes_the_log_load() {
        let mut store = StorageHandle::sim();
        store
            .append_log_typed(&PersistEntry::Accepted(action(0, 1)))
            .unwrap();
        store.append_log(b"{ torn".to_vec());
        store.commit_staged().unwrap();
        let index = load(&store).expect_err("torn tail").log_index().unwrap();
        store.truncate_log_from(index);
        let st = load(&store).expect("repaired log loads");
        assert_eq!(st.actions.len(), 1);
    }
}
