//! Public message and configuration types of the engine.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use todr_db::{Database, Op, Query, QueryResult, ReadConsistency};
use todr_net::NodeId;
use todr_sim::{ActorId, SimDuration, SimTime};

use crate::action::{ActionId, ClientId};
use crate::quorum::PrimComponent;
use crate::semantics::{QuerySemantics, UpdateReplyPolicy};

/// The knowledge level attached to an action at one server (§3, Figure
/// 1/3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Color {
    /// Ordered within the local component only.
    Red,
    /// Delivered in a transitional configuration of a primary component:
    /// globally ordered, but the server cannot tell whether the next
    /// primary saw it.
    Yellow,
    /// Global order known; applied to the database.
    Green,
    /// Known green at every server; discardable.
    White,
}

/// Identifier a client attaches to a request to match the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// A client request submitted to a replication server.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Request correlation id (unique per client).
    pub request: RequestId,
    /// The submitting client.
    pub client: ClientId,
    /// The actor to send the [`ClientReply`] to.
    pub reply_to: ActorId,
    /// Optional query part, answered at this server.
    pub query: Option<Query>,
    /// Update part ([`Op::Noop`] for query-only requests).
    pub update: Op,
    /// How queries should be served (§6).
    pub query_semantics: QuerySemantics,
    /// When the update part may be acknowledged (§6).
    pub reply_policy: UpdateReplyPolicy,
    /// Consistency tier for a query-only request. `None` keeps the
    /// legacy [`QuerySemantics`] dispatch; `Some(tier)` selects the
    /// tiered read path (lease-local or ordered linearizable,
    /// green-snapshot, or red-overlay — see
    /// [`ReadConsistency`]). Ignored for requests with an update part.
    pub read_consistency: Option<ReadConsistency>,
    /// Modelled request size in bytes.
    pub size_bytes: u32,
}

/// The engine's answer to a [`ClientRequest`].
#[derive(Debug, Clone)]
pub enum ClientReply {
    /// The action reached the global persistent order (or, under a
    /// relaxed reply policy, the locally sufficient order) and was
    /// applied.
    Committed {
        /// The request this answers.
        request: RequestId,
        /// The action id the request was assigned.
        action: ActionId,
        /// Answer to the query part, if one was present.
        result: Option<QueryResult>,
        /// Virtual time at which the request was submitted.
        submitted_at: SimTime,
        /// The replying replica's green count at commit time — the
        /// action's position in the group's global persistent order. 0
        /// for replies issued before global ordering (the relaxed
        /// [`UpdateReplyPolicy::OnRed`] path). External coordinators
        /// (the todr-shard router) merge these per-group positions to
        /// order cross-group actions.
        green_seq: u64,
    },
    /// Answer to a weak or dirty query (no global ordering involved).
    QueryAnswer {
        /// The request this answers.
        request: RequestId,
        /// The result.
        result: QueryResult,
        /// Whether red actions were visible ([`QuerySemantics::Dirty`]).
        dirty: bool,
    },
    /// The request cannot be served under the requested semantics right
    /// now (e.g. a strict query in a non-primary component would block
    /// indefinitely and the client asked not to wait).
    Rejected {
        /// The request this answers.
        request: RequestId,
        /// Human-readable reason.
        reason: &'static str,
    },
}

/// Harness / operator control events for an engine actor.
#[derive(Debug, Clone)]
pub enum EngineCtl {
    /// Simulated process crash: volatile state is lost, stable storage
    /// survives.
    Crash,
    /// Simulated process crash with a **torn write**: the log append in
    /// flight at the crash instant reaches the platter only partially
    /// (a random durable prefix of the staged entries, then one record
    /// cut mid-payload). Drawn from the simulation's dedicated fault
    /// RNG stream, so the tear replays byte-identically.
    CrashTorn,
    /// Recover from stable storage (CodeSegment A.13) and rejoin the
    /// group.
    Recover,
    /// Damage the replica's persisted log in place (latent media fault;
    /// surfaces at the next recovery scan). Drawn from the fault RNG
    /// stream.
    InjectFault {
        /// Which kind of media fault to inject.
        fault: StorageFault,
    },
    /// Begin the online-join bootstrap (§5.1, CodeSegment 5.2): connect
    /// to `via`, obtain a `PERSISTENT_JOIN` + database transfer, then
    /// join the replicated group.
    StartJoin {
        /// An existing member to use as the first representative.
        via: NodeId,
    },
    /// Broadcast a `PERSISTENT_LEAVE` for this server (§5.1).
    Leave,
    /// Administratively remove a (dead) replica by broadcasting a
    /// `PERSISTENT_LEAVE` on its behalf (footnote 3 of the paper).
    RemoveReplica {
        /// The replica to remove.
        dead: NodeId,
    },
}

/// A latent storage media fault injectable via [`EngineCtl::InjectFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Flip one random bit in one random persisted log record.
    BitFlip,
    /// Replace one random persisted log record's payload with an
    /// earlier record's payload, keeping the current-looking header.
    StaleSector,
}

/// Messages exchanged directly (outside the group) for the online-join
/// database transfer.
#[derive(Debug, Clone)]
pub enum TransferWire {
    /// Joiner → member: please represent me (or resume my transfer).
    JoinRequest {
        /// The joining server.
        joiner: NodeId,
    },
    /// Representative → joiner: the current green database state and the
    /// bookkeeping needed to start replicating.
    Snapshot {
        /// Green database snapshot.
        db: Database,
        /// Number of green actions incorporated in `db`.
        green_count: u64,
        /// Green lines as known at the representative.
        green_lines: BTreeMap<NodeId, u64>,
        /// Red cut at the representative's green point (for duplicate
        /// suppression of already-incorporated actions).
        red_cut: BTreeMap<NodeId, u64>,
        /// The server set including the joiner.
        server_set: BTreeSet<NodeId>,
        /// The representative's last known primary component.
        prim_component: PrimComponent,
        /// The joiner's own creator counter starting point (0 for new
        /// replicas).
        action_index: u64,
    },
    /// Member → action origin: "I hold the sequenced action `id`" — an
    /// eager-receipt acknowledgement for the commit fast path. The
    /// origin fast-commits once the ackers (plus itself) form a
    /// weighted quorum of the current primary component. Point-to-point
    /// like the join transfer, so it skips the group ordering machinery
    /// entirely (and its latency): one LAN hop after the sequenced
    /// multicast.
    FastAck {
        /// The receipted action.
        id: ActionId,
    },
}

/// A deliberate, compile-time-gated invariant breakage used by the
/// `todr-check` mutation self-test to prove the checking oracles have
/// teeth. Only exists under the `chaos-mutations` feature; release
/// builds cannot even construct one.
#[cfg(feature = "chaos-mutations")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMutation {
    /// Mark actions delivered in a *transitional* configuration green
    /// immediately instead of yellow — i.e. advance the green line
    /// without knowing whether the next primary component saw the
    /// action. This is precisely the unsafe shortcut §3's yellow color
    /// exists to prevent: after a partition the majority side can
    /// install a primary that orders different actions at the same
    /// green positions, violating global total order.
    PrematureGreen,
    /// Trust the persisted log blindly on recovery: skip the checksum /
    /// epoch integrity scan, and when an entry fails to even decode,
    /// silently truncate the log from that point and carry on — the
    /// classic "recovery that never met a bad disk". A stale sector
    /// then replays as a duplicate entry and the recovered replica
    /// rejoins with a silently wrong green prefix, which the durability
    /// oracle must catch.
    SkipChecksumVerify,
    /// Fast-commit without checking the in-flight conflict set: every
    /// [`UpdateReplyPolicy::Fast`] action is acknowledged at its FastAck
    /// quorum even when a conflicting red/yellow action is in flight.
    /// The reply may then reflect a prefix that differs from the final
    /// green order — exactly what the `FastCommitRevoked` oracle in
    /// todr-check exists to catch.
    SkipConflictCheck,
    /// Answer `Linearizable` reads from the local green database
    /// regardless of lease validity, membership state, or in-flight
    /// conflicting writes — a "read lease" that never expires. A
    /// partitioned minority replica then keeps serving reads while the
    /// majority commits new writes, returning stale values that the
    /// `StaleLinearizableRead` oracle in todr-check exists to catch.
    ServeReadWithoutLease,
}

/// Tuning knobs and identity of a [`ReplicationEngine`](crate::ReplicationEngine).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// This server's node id.
    pub me: NodeId,
    /// The initial replica set (the paper's static set `S`; it can
    /// change later through joins/leaves).
    pub server_set: Vec<NodeId>,
    /// Per-server voting weights for dynamic linear voting (absent =>
    /// weight 1).
    pub weights: BTreeMap<NodeId, u64>,
    /// Modelled CPU time to process one action at a replica (ordering,
    /// logging, applying). This is what caps the delayed-writes
    /// throughput in Figure 5(b).
    pub cpu_per_action: SimDuration,
    /// The fixed per-delivery-burst component of [`Self::cpu_per_action`]
    /// (frame handling, scheduling, buffer bookkeeping). The first green
    /// action of a same-instant delivery burst pays the full
    /// `cpu_per_action`; the rest of the burst pays only the marginal
    /// `cpu_per_action - cpu_burst_overhead`. Without packing every
    /// burst is a single action and the model reduces exactly to the
    /// historical per-action charge.
    pub cpu_burst_overhead: SimDuration,
    /// Upper bound on action bodies retained in memory (red set plus
    /// un-garbage-collected green tail). While at the bound, new local
    /// update requests are rejected with a retryable error — this bounds
    /// memory growth during long non-primary partitions, where red
    /// actions accumulate with no white line to discard them. `0`
    /// disables the bound.
    pub max_retained_bodies: usize,
    /// Whether this engine starts as a member (true) or joins online
    /// later via [`EngineCtl::StartJoin`] (false).
    pub initial_member: bool,
    /// Modelled size of a State message in bytes.
    pub state_msg_bytes: u32,
    /// Modelled size of a CPC message in bytes.
    pub cpc_msg_bytes: u32,
    /// Enable the commutativity commit fast path: actions submitted
    /// with [`UpdateReplyPolicy::Fast`] whose footprint is disjoint
    /// from every in-flight action are acknowledged after one forced
    /// write plus one multicast round (sequencing + FastAck quorum),
    /// without waiting for safe delivery / green ordering. Requires the
    /// EVS daemon to run with `eager_receipts`. Off by default — the
    /// default configuration's event streams stay byte-identical.
    pub fast_path: bool,
    /// Enable LARK-style **read leases**: inside a regular primary
    /// configuration every member grants itself an epoch-sealed lease
    /// (renewed by `EvsEvent::LeaseRenew` heartbeat evidence, expired
    /// conservatively on any view change — the same volatile discipline
    /// as the fast path's witness state) and answers
    /// [`ReadConsistency::Linearizable`] queries locally, parking
    /// behind receipted-but-not-yet-green conflicting writes. Requires
    /// the EVS daemon to run with `eager_receipts` and
    /// `lease_heartbeats`. Off by default — the default configuration's
    /// event streams stay byte-identical.
    pub read_leases: bool,
    /// How long a granted read lease remains valid without renewal.
    /// Must satisfy `2·hb_interval + lease_duration < fail_timeout` so
    /// a partitioned holder's lease drains before the surviving
    /// majority can install a new configuration and accept new writes.
    pub lease_duration: SimDuration,
    /// Auto-checkpoint period, in green actions: every `interval`-th
    /// green action triggers white-line garbage collection and log
    /// compaction (`0` disables; see
    /// [`ReplicationEngine::checkpoint`](crate::ReplicationEngine::checkpoint)).
    pub checkpoint_interval: u64,
    /// The injected invariant breakage, if any (`chaos-mutations`
    /// builds only).
    #[cfg(feature = "chaos-mutations")]
    pub chaos: Option<ChaosMutation>,
}

impl EngineConfig {
    /// A default configuration for server `me` among `server_set`.
    pub fn new(me: NodeId, server_set: Vec<NodeId>) -> Self {
        EngineConfig {
            me,
            server_set,
            weights: BTreeMap::new(),
            cpu_per_action: SimDuration::from_micros(380),
            cpu_burst_overhead: SimDuration::from_micros(230),
            max_retained_bodies: 1 << 16,
            fast_path: false,
            read_leases: false,
            lease_duration: SimDuration::from_millis(60),
            initial_member: true,
            state_msg_bytes: 256,
            cpc_msg_bytes: 64,
            checkpoint_interval: 1024,
            #[cfg(feature = "chaos-mutations")]
            chaos: None,
        }
    }
}

/// Counters maintained by the engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Actions created at this server.
    pub actions_created: u64,
    /// Actions marked red (first acceptance).
    pub marked_red: u64,
    /// Actions marked yellow.
    pub marked_yellow: u64,
    /// Actions marked green (applied to the database).
    pub marked_green: u64,
    /// Forced-write (sync) requests issued.
    pub syncs_requested: u64,
    /// Client replies sent.
    pub replies_sent: u64,
    /// Primary components this server participated in installing.
    pub primaries_installed: u64,
    /// Exchange rounds completed.
    pub exchanges_completed: u64,
    /// Actions retransmitted to peers during exchanges.
    pub retransmitted: u64,
    /// Fast-path commits: replies sent at the FastAck quorum, before
    /// green ordering.
    pub fast_commits: u64,
    /// Fast-path demotions: [`UpdateReplyPolicy::Fast`] requests that
    /// hit an in-flight conflict (or an unbounded footprint) and fell
    /// back to waiting for green.
    pub fast_demotions: u64,
    /// Fast-path witnesses discarded by view changes: pending fast-path
    /// candidates that were still awaiting their FastAck quorum when a
    /// transitional configuration arrived and cleared the volatile
    /// witness state (they fall back to waiting for green). Measures
    /// the view-churn cost of the fast path.
    pub fast_demotions_on_view_change: u64,
    /// Linearizable reads answered locally under a valid read lease.
    pub lease_reads: u64,
    /// Linearizable reads that found no valid lease and fell back to
    /// the ordered action path (plus explicitly ordered reads).
    pub ordered_reads: u64,
    /// Green-snapshot reads served.
    pub snapshot_reads: u64,
    /// Red-overlay reads served.
    pub overlay_reads: u64,
    /// Lease grants at configuration install time.
    pub lease_grants: u64,
    /// Heartbeat-evidence lease renewals accepted.
    pub lease_renewals: u64,
    /// Leases conservatively expired by a view change (transitional
    /// configuration or crash) before their timer ran out.
    pub lease_expirations: u64,
    /// Lease reads that had to park behind a receipted-but-not-yet-green
    /// conflicting write before answering.
    pub lease_reads_parked: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_ordering_matches_knowledge_progression() {
        assert!(Color::Red < Color::Yellow);
        assert!(Color::Yellow < Color::Green);
        assert!(Color::Green < Color::White);
    }

    #[test]
    fn engine_config_defaults() {
        let nodes: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let cfg = EngineConfig::new(nodes[0], nodes.clone());
        assert!(cfg.initial_member);
        assert_eq!(cfg.server_set.len(), 3);
        assert!(cfg.weights.is_empty());
    }
}
