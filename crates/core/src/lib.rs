//! # todr-core — the Amir–Tutu replication engine
//!
//! This crate is the primary contribution of the reproduced paper:
//! a replication engine that converts the **total order + safe delivery**
//! service of an Extended Virtual Synchrony group-communication layer
//! ([`todr_evs`]) into a **global persistent consistent order** of
//! database actions across a partitionable network — *without* end-to-end
//! acknowledgements per action. One end-to-end exchange round runs only
//! on each membership change.
//!
//! ## The algorithm in one paragraph
//!
//! Each server colors every action it knows about ([`Color`]): **red** —
//! ordered only within the local component; **yellow** — delivered in a
//! transitional configuration of a primary component (order known, but
//! the server cannot tell whether the *next* primary saw it); **green** —
//! global order known, applied to the database; **white** — known green
//! everywhere, discardable. Servers in the *primary component* mark safe
//! deliveries green immediately. When the membership changes, servers
//! exchange state messages and missing actions (the **eventual path**
//! propagation), then — if the new component holds a dynamic-linear-voting
//! quorum of the last primary — run the **CPC** (Create Primary
//! Component) round under safe delivery. The EVS trichotomy (§4.1) plus
//! the persisted [`quorum::VulnerableRecord`] make the installation
//! decision crash-consistent even though consensus on "did the install
//! finish?" is impossible in an asynchronous system.
//!
//! ## State machine
//!
//! The engine implements the full eight-state machine of the paper's
//! Figure 4 and Appendix A: `NonPrim`, `RegPrim`, `TransPrim`,
//! `ExchangeStates`, `ExchangeActions`, `Construct`, `No`, `Un` — plus a
//! `Joining` bootstrap state for replicas entering the system online via
//! `PERSISTENT_JOIN` (§5.1) and a `Down` state for crashed servers.
//!
//! ## Layering
//!
//! ```text
//!   clients ──► ReplicationEngine (this crate)
//!                 │ submits/deliveries      │ forced writes
//!                 ▼                         ▼
//!               EvsDaemon (todr-evs)      DiskActor + StableStore
//!                 │                         (todr-storage)
//!                 ▼
//!               NetFabric (todr-net)  — partitions, latency, loss
//! ```
//!
//! All of it runs deterministically inside a [`todr_sim::World`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod engine;
mod exchange;
mod persist;
pub mod quorum;
mod semantics;
mod types;

pub use action::{Action, ActionId, ActionKind, ClientId};
pub use engine::{EngineState, ReplicationEngine};
pub use exchange::{retrans_plan, RetransPlan as ExchangeRetransPlan};
pub use persist::RecoveryError;
pub use quorum::{PrimComponent, VulnerableRecord, YellowRecord};
pub use semantics::{QuerySemantics, UpdateReplyPolicy};
pub use todr_db::ReadConsistency;
pub use types::{
    ClientReply, ClientRequest, Color, EngineConfig, EngineCtl, EngineStats, RequestId,
    StorageFault, TransferWire,
};

#[cfg(feature = "chaos-mutations")]
pub use types::ChaosMutation;
