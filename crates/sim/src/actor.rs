//! The actor abstraction: every simulated process implements [`Actor`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::Payload;
use crate::world::Ctx;

/// Identifier of an actor registered in a [`World`](crate::World).
///
/// Actor ids are dense indices handed out by
/// [`World::add_actor`](crate::World::add_actor) in registration order;
/// they are stable for the lifetime of the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(u32);

impl ActorId {
    /// Builds an id from its raw index. Intended for tests and for tables
    /// that map domain identifiers to actors.
    pub const fn from_raw(raw: u32) -> Self {
        ActorId(raw)
    }

    /// The raw index.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A simulated process.
///
/// Actors are single-threaded and run-to-completion: the world invokes
/// [`Actor::handle`] with one event at a time, and all side effects (timers,
/// messages to other actors) go through the [`Ctx`] passed in. An actor
/// never blocks; waiting is expressed by scheduling a future event.
///
/// ```
/// use todr_sim::{Actor, Ctx, Payload};
///
/// struct Echo;
///
/// struct Say(&'static str);
///
/// impl Actor for Echo {
///     fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
///         if let Some(Say(s)) = payload.downcast::<Say>() {
///             ctx.trace("echo", s);
///         }
///     }
/// }
/// ```
pub trait Actor: std::any::Any {
    /// Processes one event. `payload` is whatever another actor (or the
    /// experiment driver) scheduled for this actor.
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_roundtrip_and_order() {
        let a = ActorId::from_raw(3);
        assert_eq!(a.as_raw(), 3);
        assert!(ActorId::from_raw(1) < ActorId::from_raw(2));
        assert_eq!(a.to_string(), "actor#3");
    }
}
