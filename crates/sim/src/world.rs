//! The [`World`]: actor registry, event queue and virtual clock.

use std::any::Any;
use std::collections::BinaryHeap;

use crate::actor::{Actor, ActorId};
use crate::event::{IntoPayload, Payload, QueuedEvent};
use crate::metrics::{MetricsHub, ProtocolEvent};
use crate::rng::{splitmix64, SimRng};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceLevel};

/// Policy for ordering events scheduled at the same virtual instant.
///
/// The discrete-event queue is totally ordered by `(time, tie, seq)`.
/// Under [`TieBreak::Fifo`] (the default) the tie key is constant, so
/// same-instant events run in global insertion order — the historical
/// behaviour every seed-stable test relies on. Under
/// [`TieBreak::Seeded`] the tie key is a deterministic hash of
/// `(salt, target actor, instant)`, which *permutes same-instant events
/// bound for different actors* while events bound for the **same**
/// actor keep their insertion order. Preserving per-target order means
/// FIFO link guarantees the transport layer gives the protocol stack
/// survive perturbation: only scheduling freedoms a real asynchronous
/// system also has are explored.
///
/// Each salt selects one interleaving, reproducibly: replaying the same
/// `(world seed, salt)` pair yields a bit-identical run. The
/// `todr-check` Explorer sweeps salts as its *perturbation index* to
/// search schedule space for safety violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Global insertion (FIFO) order for same-instant events.
    #[default]
    Fifo,
    /// Deterministic pseudo-random interleaving of same-instant events
    /// across different target actors, keyed by the salt.
    Seeded(u64),
}

impl TieBreak {
    /// The tie key for an event bound for `target` at instant `at`.
    fn key(self, target: ActorId, at: SimTime) -> u64 {
        match self {
            TieBreak::Fifo => 0,
            TieBreak::Seeded(salt) => splitmix64(
                salt ^ (u64::from(target.as_raw())).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ at.as_nanos().rotate_left(32),
            ),
        }
    }
}

/// The execution context handed to an [`Actor`] while it processes an
/// event.
///
/// All actor side effects flow through the context: scheduling future
/// events ([`Ctx::send_after`]), randomness ([`Ctx::rng`]) and tracing
/// ([`Ctx::trace`]). Effects are buffered and applied by the [`World`]
/// after the handler returns, which keeps event execution atomic.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ActorId,
    rng: &'a mut SimRng,
    fault_rng: &'a mut SimRng,
    trace: &'a mut Trace,
    metrics: &'a mut MetricsHub,
    pending: Vec<(SimTime, ActorId, Payload)>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently executing.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedules `payload` for `target` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_at<P: IntoPayload>(&mut self, at: SimTime, target: ActorId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push((at, target, payload.into_payload()));
    }

    /// Schedules `payload` for `target` after `delay`.
    pub fn send_after<P: IntoPayload>(&mut self, delay: SimDuration, target: ActorId, payload: P) {
        self.pending
            .push((self.now + delay, target, payload.into_payload()));
    }

    /// Schedules `payload` for `target` at the current instant (it runs
    /// after the current handler returns, before time advances).
    pub fn send_now<P: IntoPayload>(&mut self, target: ActorId, payload: P) {
        self.pending
            .push((self.now, target, payload.into_payload()));
    }

    /// Schedules `payload` for the executing actor after `delay` — the
    /// idiom for timers.
    pub fn send_self_after<P: IntoPayload>(&mut self, delay: SimDuration, payload: P) {
        let id = self.self_id;
        self.send_after(delay, id, payload);
    }

    /// Schedules `payload` for the executing actor at the current instant.
    pub fn send_self_now<P: IntoPayload>(&mut self, payload: P) {
        let id = self.self_id;
        self.send_now(id, payload);
    }

    /// The world's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The world's deterministic *fault* RNG.
    ///
    /// A second seed-derived stream reserved for fault injection (torn
    /// writes, bit flips, stale sectors). Keeping fault draws off the
    /// main stream means enabling or disabling fault injection never
    /// perturbs workload jitter, so a faulty run and its fault-free
    /// twin share every non-fault event.
    pub fn fault_rng(&mut self) -> &mut SimRng {
        self.fault_rng
    }

    /// Records an info-level trace entry.
    pub fn trace(&mut self, category: &'static str, message: impl Into<String>) {
        self.trace_at(TraceLevel::Info, category, message);
    }

    /// Records a trace entry at an explicit level.
    pub fn trace_at(
        &mut self,
        level: TraceLevel,
        category: &'static str,
        message: impl Into<String>,
    ) {
        self.trace
            .record(self.now, self.self_id, level, category, message.into());
    }

    /// The world's metrics hub (counters and histograms).
    pub fn metrics(&mut self) -> &mut MetricsHub {
        self.metrics
    }

    /// Emits a typed [`ProtocolEvent`], stamped with the current virtual
    /// time and the executing actor.
    pub fn emit(&mut self, event: ProtocolEvent) {
        self.metrics.emit(self.now, self.self_id, event);
    }
}

struct Slot {
    name: String,
    actor: Option<Box<dyn Actor>>,
    /// Metric scope the actor's writes and events land in (0 = root);
    /// fixed at registration time from the world's build scope.
    scope: u32,
}

/// The simulation world: owns the clock, the event queue, the RNG, the
/// trace, and every registered actor.
///
/// A typical run builds the world, registers the actors bottom-up (network
/// fabric, then protocol daemons, then clients), injects the initial
/// events and calls [`World::run_until`] or [`World::run_to_quiescence`].
pub struct World {
    now: SimTime,
    queue: BinaryHeap<QueuedEvent>,
    actors: Vec<Slot>,
    rng: SimRng,
    fault_rng: SimRng,
    trace: Trace,
    metrics: MetricsHub,
    next_seq: u64,
    events_processed: u64,
    event_limit: u64,
    tie_break: TieBreak,
    /// The metric scope newly registered actors are tagged with; set by
    /// multi-group harnesses around each group's wiring.
    build_scope: u32,
    /// Recycled backing storage for `Ctx::pending`: the effect buffer of
    /// the previous event, kept so steady-state stepping allocates
    /// nothing per event.
    scratch: Vec<(SimTime, ActorId, Payload)>,
}

impl World {
    /// Creates an empty world whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            rng: SimRng::new(seed),
            fault_rng: SimRng::new(splitmix64(seed ^ 0xFA01_7FA0_17FA_017F)),
            trace: Trace::default(),
            metrics: MetricsHub::new(),
            next_seq: 0,
            events_processed: 0,
            event_limit: u64::MAX,
            tie_break: TieBreak::Fifo,
            build_scope: 0,
            scratch: Vec::new(),
        }
    }

    /// Selects the same-instant scheduling policy (see [`TieBreak`]).
    ///
    /// Set this before injecting the initial events: the policy keys
    /// every subsequently pushed event, so switching mid-run only
    /// affects events scheduled after the switch (deterministically,
    /// but rarely what an exploration harness wants).
    pub fn set_tie_break(&mut self, policy: TieBreak) {
        self.tie_break = policy;
    }

    /// The active same-instant scheduling policy.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    fn push_event(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedEvent {
            at,
            tie: self.tie_break.key(target, at),
            seq,
            target,
            payload,
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Caps the total number of events the world will process; exceeding
    /// the cap panics. Guards tests against protocol livelock.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Registers an actor and returns its id. The actor is tagged with
    /// the current build scope (see [`World::set_build_scope`]).
    pub fn add_actor<A: Actor>(&mut self, name: impl Into<String>, actor: A) -> ActorId {
        let id = ActorId::from_raw(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(Slot {
            name: name.into(),
            actor: Some(Box::new(actor)),
            scope: self.build_scope,
        });
        id
    }

    /// Registers a metric scope (see
    /// [`MetricsHub::register_scope`](crate::MetricsHub::register_scope))
    /// and returns its id, for use with [`World::set_build_scope`].
    pub fn register_metric_scope(&mut self, label: &str) -> u32 {
        self.metrics.register_scope(label)
    }

    /// Sets the metric scope subsequently added actors are tagged with
    /// (0 = root). A sharded harness brackets each group's wiring with
    /// this so the group's actors report into `g<i>.`-prefixed metrics.
    pub fn set_build_scope(&mut self, scope: u32) {
        self.build_scope = scope;
    }

    /// The metric scope an actor was registered under.
    pub fn actor_scope(&self, id: ActorId) -> u32 {
        self.actors[id.as_raw() as usize].scope
    }

    /// The name an actor was registered under.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`World::add_actor`].
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.as_raw() as usize].name
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Runs a closure against a concrete actor, e.g. to script a network
    /// partition or read out metrics.
    ///
    /// # Panics
    ///
    /// Panics if the actor is not of type `A` or is currently executing.
    pub fn with_actor<A: Actor, R>(&mut self, id: ActorId, f: impl FnOnce(&mut A) -> R) -> R {
        let slot = &mut self.actors[id.as_raw() as usize];
        let actor = slot
            .actor
            .as_mut()
            .expect("actor is currently executing (re-entrant with_actor)");
        let any: &mut dyn Any = actor.as_mut();
        let concrete = any
            .downcast_mut::<A>()
            .unwrap_or_else(|| panic!("actor {} is not a {}", id, std::any::type_name::<A>()));
        f(concrete)
    }

    /// Immutable variant of [`World::with_actor`].
    ///
    /// # Panics
    ///
    /// Panics if the actor is not of type `A` or is currently executing.
    pub fn with_actor_ref<A: Actor, R>(&self, id: ActorId, f: impl FnOnce(&A) -> R) -> R {
        let slot = &self.actors[id.as_raw() as usize];
        let actor = slot
            .actor
            .as_ref()
            .expect("actor is currently executing (re-entrant with_actor_ref)");
        let any: &dyn Any = actor.as_ref();
        let concrete = any
            .downcast_ref::<A>()
            .unwrap_or_else(|| panic!("actor {} is not a {}", id, std::any::type_name::<A>()));
        f(concrete)
    }

    /// Schedules `payload` for `target` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`World::now`].
    pub fn schedule<P: IntoPayload>(&mut self, at: SimTime, target: ActorId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push_event(at, target, payload.into_payload());
    }

    /// Schedules `payload` for `target` at the current instant.
    pub fn schedule_now<P: IntoPayload>(&mut self, target: ActorId, payload: P) {
        let now = self.now;
        self.schedule(now, target, payload);
    }

    /// Schedules `payload` for `target` after `delay`.
    pub fn schedule_after<P: IntoPayload>(
        &mut self,
        delay: SimDuration,
        target: ActorId,
        payload: P,
    ) {
        let at = self.now + delay;
        self.schedule(at, target, payload);
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the event limit (see [`World::set_event_limit`]) is
    /// exceeded.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "event from the past");
        self.now = event.at;
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.event_limit,
            "event limit {} exceeded at {} — livelock?",
            self.event_limit,
            self.now
        );

        let idx = event.target.as_raw() as usize;
        let mut actor = self.actors[idx]
            .actor
            .take()
            .expect("event delivered to an executing actor");
        self.metrics.set_active_scope(self.actors[idx].scope);
        let mut ctx = Ctx {
            now: self.now,
            self_id: event.target,
            rng: &mut self.rng,
            fault_rng: &mut self.fault_rng,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
            pending: std::mem::take(&mut self.scratch),
        };
        actor.handle(&mut ctx, event.payload);
        let mut pending = ctx.pending;
        self.metrics.set_active_scope(0);
        self.actors[idx].actor = Some(actor);
        for (at, target, payload) in pending.drain(..) {
            self.push_event(at, target, payload);
        }
        // `drain` leaves the capacity in place: hand the empty buffer
        // back for the next event.
        self.scratch = pending;
        true
    }

    /// Runs until the queue is empty.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties. The clock is
    /// advanced to `deadline` even if the queue empties earlier.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` of virtual time from now.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// The world's trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace buffer (to adjust level / echo).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The world's RNG (e.g. for workload generation outside actors).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The world's fault-injection RNG (see [`Ctx::fault_rng`]).
    pub fn fault_rng(&mut self) -> &mut SimRng {
        &mut self.fault_rng
    }

    /// The world's metrics hub: typed events, counters and histograms.
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Mutable access to the metrics hub (e.g. to disable event
    /// recording, or for harness code to record its own samples).
    pub fn metrics_mut(&mut self) -> &mut MetricsHub {
        &mut self.metrics
    }

    /// Whether any events remain queued.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The time of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        count: u32,
        received_at: Vec<SimTime>,
    }

    struct Bump;

    impl Actor for Counter {
        fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.is::<Bump>() {
                self.count += 1;
                self.received_at.push(ctx.now());
            }
        }
    }

    fn counter() -> Counter {
        Counter {
            count: 0,
            received_at: Vec::new(),
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut w = World::new(0);
        let a = w.add_actor("a", counter());
        w.schedule(SimTime::from_millis(20), a, Bump);
        w.schedule(SimTime::from_millis(10), a, Bump);
        w.run_to_quiescence();
        w.with_actor(a, |c: &mut Counter| {
            assert_eq!(c.count, 2);
            assert_eq!(
                c.received_at,
                vec![SimTime::from_millis(10), SimTime::from_millis(20)]
            );
        });
        assert_eq!(w.now(), SimTime::from_millis(20));
    }

    #[test]
    fn same_time_events_fifo_by_insertion() {
        struct Recorder {
            seen: Vec<u32>,
        }
        struct Tag(u32);
        impl Actor for Recorder {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, payload: Payload) {
                if let Some(Tag(n)) = payload.downcast::<Tag>() {
                    self.seen.push(n);
                }
            }
        }
        let mut w = World::new(0);
        let r = w.add_actor("r", Recorder { seen: vec![] });
        for i in 0..5 {
            w.schedule(SimTime::from_millis(1), r, Tag(i));
        }
        w.run_to_quiescence();
        w.with_actor(r, |rec: &mut Recorder| {
            assert_eq!(rec.seen, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn actors_can_message_each_other() {
        struct PingPong {
            peer: Option<ActorId>,
            remaining: u32,
            bounces: u32,
        }
        struct Ball;
        impl Actor for PingPong {
            fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
                if payload.is::<Ball>() {
                    self.bounces += 1;
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.send_after(SimDuration::from_micros(100), self.peer.unwrap(), Ball);
                    }
                }
            }
        }
        let mut w = World::new(0);
        let a = w.add_actor(
            "a",
            PingPong {
                peer: None,
                remaining: 3,
                bounces: 0,
            },
        );
        let b = w.add_actor(
            "b",
            PingPong {
                peer: None,
                remaining: 3,
                bounces: 0,
            },
        );
        w.with_actor(a, |p: &mut PingPong| p.peer = Some(b));
        w.with_actor(b, |p: &mut PingPong| p.peer = Some(a));
        w.schedule_now(a, Ball);
        w.run_to_quiescence();
        let ba = w.with_actor(a, |p: &mut PingPong| p.bounces);
        let bb = w.with_actor(b, |p: &mut PingPong| p.bounces);
        assert_eq!(ba + bb, 7); // initial + 6 returns
        assert_eq!(w.now(), SimTime::from_micros(600));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut w = World::new(0);
        let a = w.add_actor("a", counter());
        w.schedule(SimTime::from_millis(5), a, Bump);
        w.schedule(SimTime::from_millis(15), a, Bump);
        w.run_until(SimTime::from_millis(10));
        w.with_actor(a, |c: &mut Counter| assert_eq!(c.count, 1));
        assert_eq!(w.now(), SimTime::from_millis(10));
        assert!(w.has_pending_events());
        w.run_to_quiescence();
        w.with_actor(a, |c: &mut Counter| assert_eq!(c.count, 2));
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut w = World::new(0);
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.now(), SimTime::from_secs(3));
    }

    #[test]
    fn send_now_runs_before_time_advances() {
        struct Chain {
            hops: u32,
        }
        struct Hop;
        impl Actor for Chain {
            fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
                if payload.is::<Hop>() && self.hops < 3 {
                    self.hops += 1;
                    ctx.send_self_now(Hop);
                }
            }
        }
        let mut w = World::new(0);
        let a = w.add_actor("a", Chain { hops: 0 });
        w.schedule_now(a, Hop);
        w.run_to_quiescence();
        assert_eq!(w.now(), SimTime::ZERO);
        w.with_actor(a, |c: &mut Chain| assert_eq!(c.hops, 3));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut w = World::new(0);
        let a = w.add_actor("a", counter());
        w.schedule(SimTime::from_millis(10), a, Bump);
        w.run_to_quiescence();
        w.schedule(SimTime::from_millis(5), a, Bump);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct Loopy;
        struct Go;
        impl Actor for Loopy {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _payload: Payload) {
                ctx.send_self_after(SimDuration::from_nanos(1), Go);
            }
        }
        let mut w = World::new(0);
        w.set_event_limit(100);
        let a = w.add_actor("loopy", Loopy);
        w.schedule_now(a, Go);
        w.run_to_quiescence();
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        fn run(seed: u64) -> (u64, SimTime) {
            struct Jitter {
                remaining: u32,
            }
            struct T;
            impl Actor for Jitter {
                fn handle(&mut self, ctx: &mut Ctx<'_>, _p: Payload) {
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        let d = SimDuration::from_nanos(ctx.rng().gen_range(1000) + 1);
                        ctx.send_self_after(d, T);
                    }
                }
            }
            let mut w = World::new(seed);
            let a = w.add_actor("j", Jitter { remaining: 50 });
            w.schedule_now(a, T);
            w.run_to_quiescence();
            (w.events_processed(), w.now())
        }
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }

    struct Logger {
        order: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        tag: u32,
    }
    struct Poke;
    impl Actor for Logger {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.is::<Poke>() {
                self.order.borrow_mut().push(self.tag);
            }
        }
    }

    fn tie_break_order(policy: TieBreak, actors: u32, per_actor: u32) -> Vec<u32> {
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = World::new(0);
        w.set_tie_break(policy);
        let ids: Vec<ActorId> = (0..actors)
            .map(|tag| {
                w.add_actor(
                    format!("a{tag}"),
                    Logger {
                        order: order.clone(),
                        tag,
                    },
                )
            })
            .collect();
        for round in 0..per_actor {
            for (tag, &id) in ids.iter().enumerate() {
                // Distinguishable per-actor sequence: tag*per_actor+round.
                let _ = (tag, round);
                w.schedule(SimTime::from_millis(1), id, Poke);
            }
        }
        w.run_to_quiescence();
        let result = order.borrow().clone();
        result
    }

    #[test]
    fn seeded_tie_break_permutes_across_actors_only() {
        let fifo = tie_break_order(TieBreak::Fifo, 4, 3);
        assert_eq!(fifo, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        let seeded = tie_break_order(TieBreak::Seeded(7), 4, 3);
        // Same multiset of deliveries...
        let mut a = fifo.clone();
        let mut b = seeded.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // ...in a different cross-actor interleaving...
        assert_ne!(fifo, seeded, "salt 7 should perturb same-instant order");
        // ...while each actor still sees its own events in FIFO order
        // (trivially true here since per-actor events are identical, but
        // the grouping must be contiguous per actor at one instant:
        // every actor's 3 events share one tie key, so they appear as an
        // uninterrupted run).
        let mut runs = Vec::new();
        for &tag in &seeded {
            if runs.last().map(|&(t, _)| t) == Some(tag) {
                if let Some(last) = runs.last_mut() {
                    last.1 += 1;
                }
            } else {
                runs.push((tag, 1));
            }
        }
        assert_eq!(
            runs.len(),
            4,
            "per-target events must stay contiguous: {seeded:?}"
        );
    }

    #[test]
    fn seeded_tie_break_is_deterministic_and_salt_sensitive() {
        let a = tie_break_order(TieBreak::Seeded(1), 5, 2);
        let b = tie_break_order(TieBreak::Seeded(1), 5, 2);
        assert_eq!(a, b, "same salt must replay identically");
        let salts_differ = (2..10).any(|s| tie_break_order(TieBreak::Seeded(s), 5, 2) != a);
        assert!(
            salts_differ,
            "different salts should reach different interleavings"
        );
    }

    #[test]
    fn tie_break_does_not_reorder_across_instants() {
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = World::new(0);
        w.set_tie_break(TieBreak::Seeded(3));
        let a = w.add_actor(
            "a",
            Logger {
                order: order.clone(),
                tag: 0,
            },
        );
        let b = w.add_actor(
            "b",
            Logger {
                order: order.clone(),
                tag: 1,
            },
        );
        w.schedule(SimTime::from_millis(2), b, Poke);
        w.schedule(SimTime::from_millis(1), a, Poke);
        w.run_to_quiescence();
        assert_eq!(*order.borrow(), vec![0, 1], "time order is inviolable");
    }

    #[test]
    fn with_actor_ref_reads_state() {
        let mut w = World::new(0);
        let a = w.add_actor("a", counter());
        w.schedule_now(a, Bump);
        w.run_to_quiescence();
        let n = w.with_actor_ref(a, |c: &Counter| c.count);
        assert_eq!(n, 1);
    }

    #[test]
    fn actors_report_metrics_into_their_build_scope() {
        struct Bumper;
        struct Tick;
        impl Actor for Bumper {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _p: Payload) {
                ctx.metrics().incr("hits", 1);
                ctx.emit(ProtocolEvent::RedLineAdvance { node: 0, red: 1 });
            }
        }
        let mut w = World::new(0);
        let root = w.add_actor("root", Bumper);
        let g0 = w.register_metric_scope("g0");
        w.set_build_scope(g0);
        let scoped = w.add_actor("scoped", Bumper);
        w.set_build_scope(0);
        assert_eq!(w.actor_scope(root), 0);
        assert_eq!(w.actor_scope(scoped), g0);
        w.schedule_now(root, Tick);
        w.schedule_now(scoped, Tick);
        w.run_to_quiescence();
        assert_eq!(w.metrics().counter("hits"), 1);
        assert_eq!(w.metrics().counter("g0.hits"), 1);
        let groups: Vec<u32> = w.metrics().events().iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, g0]);
    }

    #[test]
    fn actor_names_are_kept() {
        let mut w = World::new(0);
        let a = w.add_actor("server-3", counter());
        assert_eq!(w.actor_name(a), "server-3");
        assert_eq!(w.actor_count(), 1);
    }
}
