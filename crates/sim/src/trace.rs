//! A lightweight, in-memory trace of protocol events.
//!
//! Tracing exists for two audiences: humans debugging a protocol run
//! (`echo` mode prints entries as they happen) and tests asserting that a
//! particular protocol step occurred (the retained ring buffer).

use std::collections::VecDeque;
use std::fmt;

use crate::actor::ActorId;
use crate::time::SimTime;

/// Verbosity of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Fine-grained protocol internals.
    Debug,
    /// Normal protocol milestones (view installed, action ordered...).
    Info,
    /// Unexpected-but-handled situations.
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
        };
        f.write_str(s)
    }
}

/// One retained trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Virtual time at which the entry was emitted.
    pub at: SimTime,
    /// Emitting actor.
    pub actor: ActorId,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag, e.g. `"evs"`, `"engine"`, `"net"`.
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {} {}] {}",
            self.at, self.level, self.actor, self.category, self.message
        )
    }
}

/// Ring buffer of recent [`TraceEntry`] records with optional stdout echo.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    min_level: TraceLevel,
    echo: bool,
}

impl Trace {
    /// Creates a trace retaining up to `capacity` entries at
    /// [`TraceLevel::Info`] and above.
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            min_level: TraceLevel::Info,
            echo: false,
        }
    }

    /// Sets the minimum retained level.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Enables or disables echoing entries to stdout as they are recorded.
    pub fn set_echo(&mut self, echo: bool) {
        self.echo = echo;
    }

    /// Records an entry (dropping it if below the minimum level).
    pub fn record(
        &mut self,
        at: SimTime,
        actor: ActorId,
        level: TraceLevel,
        category: &'static str,
        message: String,
    ) {
        if level < self.min_level {
            return;
        }
        let entry = TraceEntry {
            at,
            actor,
            level,
            category,
            message,
        };
        if self.echo {
            println!("{entry}");
        }
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all retained entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Convenience for tests: whether any retained entry in `category`
    /// contains `needle`.
    pub fn contains(&self, category: &str, needle: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.category == category && e.message.contains(needle))
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace: &mut Trace, level: TraceLevel, msg: &str) {
        trace.record(
            SimTime::ZERO,
            ActorId::from_raw(0),
            level,
            "test",
            msg.to_string(),
        );
    }

    #[test]
    fn records_and_iterates_in_order() {
        let mut t = Trace::new(10);
        entry(&mut t, TraceLevel::Info, "a");
        entry(&mut t, TraceLevel::Warn, "b");
        let msgs: Vec<&str> = t.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
    }

    #[test]
    fn drops_below_min_level() {
        let mut t = Trace::new(10);
        entry(&mut t, TraceLevel::Debug, "hidden");
        assert!(t.is_empty());
        t.set_min_level(TraceLevel::Debug);
        entry(&mut t, TraceLevel::Debug, "visible");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        entry(&mut t, TraceLevel::Info, "one");
        entry(&mut t, TraceLevel::Info, "two");
        entry(&mut t, TraceLevel::Info, "three");
        let msgs: Vec<&str> = t.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["two", "three"]);
    }

    #[test]
    fn contains_matches_category_and_substring() {
        let mut t = Trace::new(4);
        entry(&mut t, TraceLevel::Info, "view installed {1,2,3}");
        assert!(t.contains("test", "view installed"));
        assert!(!t.contains("other", "view installed"));
        assert!(!t.contains("test", "no such"));
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut t = Trace::new(0);
        entry(&mut t, TraceLevel::Warn, "x");
        assert!(t.is_empty());
    }

    #[test]
    fn entry_display_is_informative() {
        let e = TraceEntry {
            at: SimTime::from_millis(5),
            actor: ActorId::from_raw(2),
            level: TraceLevel::Info,
            category: "evs",
            message: "hello".into(),
        };
        let s = e.to_string();
        assert!(s.contains("INFO"));
        assert!(s.contains("actor#2"));
        assert!(s.contains("evs"));
        assert!(s.contains("hello"));
    }
}
