//! A deterministic 64-bit checksum shared by the storage and wire
//! layers.
//!
//! FNV-1a over the bytes: tiny, allocation-free and stable across
//! platforms — exactly what a simulated disk format and a byte-codec
//! need to detect torn writes and flipped bits. It is **not** a
//! cryptographic hash; the threat model is hardware corruption, not an
//! adversary.

/// FNV-1a 64-bit hash of `bytes`.
///
/// Used as the per-record checksum in `todr-storage`'s log format and
/// as the frame trailer of `todr-evs`'s byte codec. A single flipped
/// bit anywhere in the input changes the output with overwhelming
/// probability (collision odds ~2⁻⁶⁴ for random corruption).
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(checksum64(b""), 0xcbf29ce484222325);
        assert_eq!(checksum64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(checksum64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"the quick brown fox".to_vec();
        let reference = checksum64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn prefix_truncation_changes_the_checksum() {
        let base = b"0123456789abcdef".to_vec();
        let reference = checksum64(&base);
        for cut in 0..base.len() {
            assert_ne!(checksum64(&base[..cut]), reference, "cut {cut}");
        }
    }
}
