//! Single-server FIFO resource occupancy, used to model per-node CPU cost.
//!
//! Event handlers in a discrete-event simulation execute in zero virtual
//! time; to charge processing cost (e.g. "handling one replicated action
//! costs 380 µs of CPU") an actor consults a [`CpuMeter`]: the meter tracks
//! when the modelled processor becomes free and answers, for work arriving
//! *now*, when that work would complete.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Models a single FIFO processor with a service time per job.
///
/// ```
/// use todr_sim::{CpuMeter, SimDuration, SimTime};
///
/// let mut cpu = CpuMeter::new();
/// let t0 = SimTime::from_millis(10);
/// // Two jobs arrive at the same instant; they serialize.
/// let done1 = cpu.charge(t0, SimDuration::from_micros(400));
/// let done2 = cpu.charge(t0, SimDuration::from_micros(400));
/// assert_eq!(done1, t0 + SimDuration::from_micros(400));
/// assert_eq!(done2, t0 + SimDuration::from_micros(800));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuMeter {
    busy_until: SimTime,
    busy_time: SimDuration,
    jobs: u64,
}

impl CpuMeter {
    /// A meter for an idle processor.
    pub fn new() -> Self {
        CpuMeter::default()
    }

    /// Charges a job arriving at `now` with the given `cost`, returning
    /// the virtual time at which the job completes (after queueing behind
    /// earlier jobs).
    pub fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.busy_time += cost;
        self.jobs += 1;
        self.busy_until
    }

    /// When the processor becomes free (may be in the past).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total processing time charged so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of jobs charged.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilisation over the window `[SimTime::ZERO, now]`, in `[0, 1]`.
    pub fn utilisation(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }

    /// Forgets all accumulated state (e.g. on simulated node crash).
    pub fn reset(&mut self) {
        *self = CpuMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_processor_starts_immediately() {
        let mut cpu = CpuMeter::new();
        let done = cpu.charge(SimTime::from_millis(5), SimDuration::from_millis(1));
        assert_eq!(done, SimTime::from_millis(6));
    }

    #[test]
    fn back_to_back_jobs_queue() {
        let mut cpu = CpuMeter::new();
        let t = SimTime::from_millis(0);
        let d1 = cpu.charge(t, SimDuration::from_millis(2));
        let d2 = cpu.charge(t, SimDuration::from_millis(3));
        assert_eq!(d1, SimTime::from_millis(2));
        assert_eq!(d2, SimTime::from_millis(5));
        assert_eq!(cpu.jobs(), 2);
    }

    #[test]
    fn gap_resets_start_time() {
        let mut cpu = CpuMeter::new();
        cpu.charge(SimTime::from_millis(0), SimDuration::from_millis(1));
        let done = cpu.charge(SimTime::from_millis(10), SimDuration::from_millis(1));
        assert_eq!(done, SimTime::from_millis(11));
    }

    #[test]
    fn utilisation_accounts_busy_fraction() {
        let mut cpu = CpuMeter::new();
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(5));
        let u = cpu.utilisation(SimTime::from_millis(10));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(cpu.utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut cpu = CpuMeter::new();
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(5));
        cpu.reset();
        assert_eq!(cpu.busy_until(), SimTime::ZERO);
        assert_eq!(cpu.jobs(), 0);
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
    }
}
