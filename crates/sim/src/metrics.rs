//! Typed observability: protocol events, named counters and fixed-bucket
//! latency histograms.
//!
//! Every [`World`](crate::World) owns a [`MetricsHub`]. Actors reach it
//! through [`Ctx::metrics`](crate::Ctx::metrics) and
//! [`Ctx::emit`](crate::Ctx::emit); harness code reads it back through
//! [`World::metrics`](crate::World::metrics). Three kinds of data live
//! here:
//!
//! * **[`ProtocolEvent`]s** — a typed, timestamped log of the protocol
//!   transitions that matter to the paper (view installations, action
//!   coloring, green/red line movement, synchronization, client
//!   commits). Checkers assert on these instead of grepping the
//!   free-text trace.
//! * **Counters** — named monotone `u64`s (`"net.sent"`,
//!   `"evs.retransmitted"`, ...), keyed by a dotted
//!   `subsystem.metric` convention.
//! * **Histograms** — fixed log₂-bucket latency distributions with O(1)
//!   insert and O(#buckets) percentile queries; no per-sample storage
//!   and no sort-on-query.
//!
//! Everything in the hub is a pure function of the simulation's event
//! sequence, so for a fixed seed the [`MetricsExport`] (and its JSON
//! rendering) is byte-identical across runs.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use crate::actor::ActorId;
use crate::rng::splitmix64;
use crate::time::{SimDuration, SimTime};

/// Knowledge level of an action as it moves through the engine; mirrors
/// `todr_core::Color` with primitive spelling so the kernel does not
/// depend on upper layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventColor {
    /// Ordered within the local component only.
    Red,
    /// Globally ordered, next-primary knowledge uncertain.
    Yellow,
    /// Global order known; applied to the database.
    Green,
    /// Known green everywhere; discardable.
    White,
}

/// A typed protocol transition, emitted by the instrumented subsystems
/// alongside (not instead of) the free-text trace.
///
/// Fields are primitives (`u32` node ids, `u64` sequence numbers) so the
/// kernel stays dependency-free; the emitting layer converts its own
/// ids. `node` is always the *reporting* replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolEvent {
    /// A group-communication daemon installed a regular configuration.
    ViewInstalled {
        /// Reporting replica.
        node: u32,
        /// Configuration sequence number.
        conf_seq: u64,
        /// Coordinator that installed the configuration.
        coordinator: u32,
        /// Number of members in the new configuration.
        members: u32,
    },
    /// A daemon delivered a transitional configuration (the EVS signal
    /// that membership is about to change).
    TransitionalConfig {
        /// Reporting replica.
        node: u32,
        /// Configuration sequence number being left.
        conf_seq: u64,
    },
    /// The engine created a new action from a client request.
    ActionCreated {
        /// Creating replica.
        node: u32,
        /// Action sequence local to the creator (red counter).
        action_seq: u64,
    },
    /// An action reached a (new) color at this replica.
    ActionOrdered {
        /// Reporting replica.
        node: u32,
        /// Creator of the action.
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
        /// The color the action reached.
        color: EventColor,
    },
    /// The green line (global persistent order prefix) advanced.
    GreenLineAdvance {
        /// Reporting replica.
        node: u32,
        /// New green line position (actions applied).
        green: u64,
    },
    /// The red line (locally ordered prefix) advanced.
    RedLineAdvance {
        /// Reporting replica.
        node: u32,
        /// New red line position.
        red: u64,
    },
    /// A state-transfer / exchange round completed at this replica.
    SyncCompleted {
        /// Reporting replica.
        node: u32,
        /// Actions obtained during the exchange.
        actions_recovered: u64,
    },
    /// A message was retransmitted (EVS reliable-link or engine-level).
    Retransmit {
        /// Reporting replica.
        node: u32,
        /// Messages retransmitted in this burst.
        count: u64,
    },
    /// A client observed a committed update.
    ClientCommit {
        /// Client identifier.
        client: u64,
        /// Commit latency in virtual nanoseconds.
        latency_nanos: u64,
    },
    /// A replication engine lost its volatile state (simulated process
    /// crash); stable storage survives. Trace oracles use this to reset
    /// per-incarnation monotonicity tracking.
    EngineCrashed {
        /// The crashed replica.
        node: u32,
    },
    /// A replication engine reloaded its state from stable storage.
    EngineRecovered {
        /// The recovering replica.
        node: u32,
        /// The green count restored from disk — must never exceed the
        /// green line the replica had reached before the crash.
        green: u64,
    },
    /// The group-communication layer delivered an application message
    /// in agreed order. Oracles cross-check that all members of a
    /// configuration deliver the same sender at the same sequence slot.
    Delivered {
        /// Reporting replica.
        node: u32,
        /// Sequence number of the configuration the message was
        /// sequenced in.
        conf_seq: u64,
        /// Coordinator of that configuration (disambiguates conf ids).
        coordinator: u32,
        /// Agreed-order slot within the configuration.
        seq: u64,
        /// The node whose daemon originally submitted the message.
        sender: u32,
        /// Whether delivery happened in the transitional configuration.
        in_transitional: bool,
    },
    /// Recovery found a torn final log record (the partial write at the
    /// crash boundary) and truncated it. Benign: the truncated actions
    /// were at most red, and the exchange protocol re-fetches them from
    /// peers on rejoin.
    TornTailTruncated {
        /// The recovering replica.
        node: u32,
        /// Index of the first truncated log record.
        log_index: u64,
    },
    /// Recovery found corruption it cannot attribute to a torn tail
    /// (mid-log checksum mismatch, epoch regression, or a corrupt named
    /// record). The replica fail-stops rather than rejoin with silently
    /// wrong state.
    CorruptionDetected {
        /// The fail-stopping replica.
        node: u32,
        /// Index of the offending log record; `None` when a named
        /// record (rather than the action log) was corrupt.
        log_index: Option<u64>,
    },
    /// A shard router opened a cross-shard transaction.
    CrossShardStart {
        /// Router-local transaction id.
        txn: u64,
        /// Bitmask of participating groups (bit `g` set ⇔ group `g`
        /// participates; group count is bounded well below 64).
        participants: u64,
    },
    /// One participating group globally ordered a transaction's prepare
    /// marker and reported its green position.
    CrossShardPrepared {
        /// Router-local transaction id.
        txn: u64,
        /// The participating group.
        group: u32,
        /// The prepare marker's position in that group's green order.
        green_seq: u64,
    },
    /// All prepares are green: the router fixed the transaction's merged
    /// cross-group timestamp (the deterministic max of the prepare
    /// positions).
    CrossShardMerged {
        /// Router-local transaction id.
        txn: u64,
        /// The merged timestamp.
        ts: u64,
    },
    /// One participating group globally ordered (and applied) a
    /// transaction's commit.
    CrossShardCommitted {
        /// Router-local transaction id.
        txn: u64,
        /// The participating group.
        group: u32,
        /// The commit's position in that group's green order.
        green_seq: u64,
        /// Submission attempt that produced this commit (1 = first);
        /// retries can land at later positions while an earlier attempt
        /// already applied the writes, so order oracles only trust
        /// first-attempt positions.
        attempt: u32,
    },
    /// Every participating group committed: the transaction is applied
    /// across the database and the client was answered.
    CrossShardApplied {
        /// Router-local transaction id.
        txn: u64,
    },
    /// The static conflict classification of an action, exported by its
    /// creating replica when the commit fast path is enabled. Row
    /// identities are stable 64-bit fingerprints (sorted, deduplicated)
    /// so the todr-check conflict oracle can replay exactly the
    /// relation the engine evaluated.
    ActionFootprint {
        /// Creating replica.
        node: u32,
        /// Creator-local action sequence.
        action_seq: u64,
        /// Sorted fingerprints of the written rows (empty if unbounded).
        writes: Vec<u64>,
        /// The write side is statically unbounded.
        writes_unbounded: bool,
        /// Sorted fingerprints of the read rows (empty if unbounded).
        reads: Vec<u64>,
        /// The read side is statically unbounded.
        reads_unbounded: bool,
        /// The update consists only of commutative ops.
        commutative: bool,
        /// The update consists only of timestamped ops.
        timestamped: bool,
    },
    /// A replica acknowledged its own action on the commit fast path: a
    /// weighted quorum of the primary component holds the sequenced
    /// action and no in-flight conflict was detected. The reply to the
    /// client precedes the action's green ordering; the
    /// `FastCommitRevoked` oracle checks that the promise is kept.
    FastCommit {
        /// The fast-committing (origin) replica.
        node: u32,
        /// Creator-local action sequence.
        action_seq: u64,
    },
    /// A `Fast`-policy action hit an in-flight conflict (or had an
    /// unbounded footprint) at its origin and fell back to the normal
    /// wait-for-green acknowledgement.
    FastDemoted {
        /// The origin replica.
        node: u32,
        /// Creator-local action sequence.
        action_seq: u64,
    },
    /// A replica served a read at some consistency tier. Emitted only
    /// when read leases are enabled (the linearizability oracle's
    /// input); `version` is the serving database's write-version of the
    /// read row at answer time.
    ReadServed {
        /// The serving replica.
        node: u32,
        /// Fingerprint of the read row.
        key_fp: u64,
        /// How the read was served.
        tier: ReadTier,
        /// The row's write-version in the database the answer came from.
        version: u64,
    },
    /// A replica acknowledged an update to its client (the linearization
    /// point the read oracle measures staleness against). Emitted only
    /// when read leases are enabled; the action's write footprint is
    /// correlated via its `ActionFootprint` event.
    UpdateAcked {
        /// The acknowledging (origin) replica.
        node: u32,
        /// Creator of the acknowledged action (== `node` today).
        creator: u32,
        /// Creator-local action sequence.
        action_seq: u64,
    },
    /// A replica granted itself (or renewed) a read lease inside a
    /// regular primary configuration. The lease-safety oracle checks
    /// that holder intervals from *different* configurations never
    /// overlap.
    LeaseGranted {
        /// The lease-holding replica.
        node: u32,
        /// Sequence number of the configuration the lease is sealed to.
        conf_seq: u64,
        /// Coordinator of that configuration (disambiguates conf ids).
        coordinator: u32,
        /// Virtual-time nanosecond at which the lease expires unless
        /// renewed.
        expires_nanos: u64,
        /// `true` for a heartbeat renewal of an existing lease.
        renewal: bool,
    },
}

/// How a read was served; mirrors `todr_db::ReadConsistency` plus the
/// lease/ordered split of the linearizable tier, with primitive spelling
/// so the kernel does not depend on upper layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadTier {
    /// Linearizable, answered locally under a valid read lease.
    LeaseLinearizable,
    /// Linearizable, answered through the ordered action path.
    OrderedLinearizable,
    /// Green-prefix snapshot read.
    GreenSnapshot,
    /// Green prefix plus local red suffix.
    RedOverlay,
}

impl ProtocolEvent {
    /// Stable kebab-case name of the event kind (used as a grouping key
    /// in exports and assertions).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::ViewInstalled { .. } => "view-installed",
            ProtocolEvent::TransitionalConfig { .. } => "transitional-config",
            ProtocolEvent::ActionCreated { .. } => "action-created",
            ProtocolEvent::ActionOrdered { .. } => "action-ordered",
            ProtocolEvent::GreenLineAdvance { .. } => "green-line-advance",
            ProtocolEvent::RedLineAdvance { .. } => "red-line-advance",
            ProtocolEvent::SyncCompleted { .. } => "sync-completed",
            ProtocolEvent::Retransmit { .. } => "retransmit",
            ProtocolEvent::ClientCommit { .. } => "client-commit",
            ProtocolEvent::EngineCrashed { .. } => "engine-crashed",
            ProtocolEvent::EngineRecovered { .. } => "engine-recovered",
            ProtocolEvent::Delivered { .. } => "delivered",
            ProtocolEvent::TornTailTruncated { .. } => "torn-tail-truncated",
            ProtocolEvent::CorruptionDetected { .. } => "corruption-detected",
            ProtocolEvent::CrossShardStart { .. } => "cross-shard-start",
            ProtocolEvent::CrossShardPrepared { .. } => "cross-shard-prepared",
            ProtocolEvent::CrossShardMerged { .. } => "cross-shard-merged",
            ProtocolEvent::CrossShardCommitted { .. } => "cross-shard-committed",
            ProtocolEvent::CrossShardApplied { .. } => "cross-shard-applied",
            ProtocolEvent::ActionFootprint { .. } => "action-footprint",
            ProtocolEvent::FastCommit { .. } => "fast-commit",
            ProtocolEvent::FastDemoted { .. } => "fast-demoted",
            ProtocolEvent::ReadServed { .. } => "read-served",
            ProtocolEvent::UpdateAcked { .. } => "update-acked",
            ProtocolEvent::LeaseGranted { .. } => "lease-granted",
        }
    }
}

/// A [`ProtocolEvent`] plus its emission context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedEvent {
    /// Virtual time of emission, in nanoseconds.
    pub at_nanos: u64,
    /// Raw id of the emitting actor.
    pub actor: u32,
    /// Metric scope of the emitting actor (0 = the root scope). In a
    /// sharded world each replication group gets its own scope, so
    /// per-group trace oracles filter on this instead of guessing group
    /// membership from actor ids.
    pub group: u32,
    /// The event itself.
    pub event: ProtocolEvent,
}

/// A fixed-bucket latency histogram over `u64` nanosecond samples.
///
/// Bucket `i` holds samples whose value has its highest set bit at
/// position `i` (i.e. log₂-spaced buckets), so insert is O(1) and a
/// percentile query walks at most 64 counters. The reported percentile
/// value is the *upper bound* of the bucket the rank falls in — a ≤2×
/// overestimate, which is the right bias for latency budgets. The exact
/// maximum is tracked separately.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    const BUCKETS: usize = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; Self::BUCKETS];
        }
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimDuration`] sample.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples in nanoseconds (0 if empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Exact maximum recorded sample in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in [0, 1], as the upper bound of the
    /// bucket containing that rank (clamped to the exact max).
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; Self::BUCKETS];
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The summary quadruple used in exports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_nanos: self.mean_nanos(),
            p50_nanos: self.quantile_nanos(0.50),
            p95_nanos: self.quantile_nanos(0.95),
            p99_nanos: self.quantile_nanos(0.99),
            max_nanos: self.max,
        }
    }
}

/// Percentile summary of one histogram, in nanoseconds of virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample.
    pub mean_nanos: u64,
    /// Median (bucket upper bound).
    pub p50_nanos: u64,
    /// 95th percentile (bucket upper bound).
    pub p95_nanos: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_nanos: u64,
    /// Exact maximum.
    pub max_nanos: u64,
}

/// A non-cryptographic hasher for interned-name keys: mixes the written
/// words through splitmix64. The standard `SipHash` default is
/// measurably slower on the 16-byte `(ptr, len)` keys the name table
/// hashes once per metric update.
#[derive(Debug, Default, Clone)]
struct NameKeyHasher(u64);

impl Hasher for NameKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64(self.0 ^ u64::from_le_bytes(word));
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = splitmix64(self.0 ^ v as u64);
    }
}

/// Interning table for `&'static str` metric names.
///
/// The hot path (`incr` on a name already seen) resolves the name to a
/// dense slot index by hashing its `(ptr, len)` pair — no byte
/// comparison, no tree walk. Distinct `&'static str`s with equal bytes
/// (the same literal in two crates) fall back to a by-content map so
/// they share one slot; that path runs once per call site, after which
/// the pointer key is cached.
#[derive(Debug, Default)]
struct NameTable {
    by_ptr: HashMap<(usize, usize), usize, BuildHasherDefault<NameKeyHasher>>,
    by_name: BTreeMap<&'static str, usize>,
    names: Vec<&'static str>,
}

impl NameTable {
    fn slot(&mut self, name: &'static str) -> usize {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(&slot) = self.by_ptr.get(&key) {
            return slot;
        }
        let slot = match self.by_name.get(name) {
            Some(&slot) => slot,
            None => {
                let slot = self.names.len();
                self.names.push(name);
                self.by_name.insert(name, slot);
                slot
            }
        };
        self.by_ptr.insert(key, slot);
        slot
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// `(name, slot)` pairs in name order — the iteration backbone that
    /// keeps every reader (and the export) deterministic.
    fn sorted(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.by_name.iter().map(|(&k, &v)| (k, v))
    }
}

fn slot_value<T: Clone>(store: &[Option<T>], slot: usize) -> Option<T> {
    store.get(slot).and_then(|v| v.clone())
}

fn slot_mut<T>(store: &mut Vec<Option<T>>, slot: usize) -> &mut Option<T> {
    if store.len() <= slot {
        store.resize_with(slot + 1, || None);
    }
    &mut store[slot]
}

/// The hub collecting counters, histograms and typed events for one
/// [`World`](crate::World).
///
/// Names are interned into dense slots (an internal name table) so the per-event
/// hot path (`incr`, `observe_nanos`) is a hash of a pointer pair plus
/// an array index rather than a `BTreeMap` walk with byte-wise key
/// comparisons; all read-side iteration goes through the sorted name
/// index, so exports stay byte-identical to the old representation.
#[derive(Debug, Default)]
pub struct MetricsHub {
    names: NameTable,
    counters: Vec<Option<u64>>,
    gauges: Vec<Option<u64>>,
    histograms: Vec<Option<Histogram>>,
    events: Vec<RecordedEvent>,
    record_events: bool,
    /// Registered scope prefixes (`"g0."`, `"g1."`, …); scope id `i + 1`
    /// maps to `scope_prefixes[i]`. Scope 0 is the implicit root with no
    /// prefix, so a world that never registers a scope behaves — and
    /// exports — exactly as before scopes existed.
    scope_prefixes: Vec<&'static str>,
    active_scope: u32,
    /// `(scope, root slot) → prefixed slot` cache so the scoped hot path
    /// stays one extra hash away from the unscoped one; the prefixed
    /// name string is built (and leaked) once per pair.
    scoped_slots: HashMap<(u32, usize), usize, BuildHasherDefault<NameKeyHasher>>,
}

impl MetricsHub {
    /// Creates an empty hub with event recording enabled.
    pub fn new() -> Self {
        MetricsHub {
            record_events: true,
            ..MetricsHub::default()
        }
    }

    /// Disables (or re-enables) storage of [`ProtocolEvent`]s; counters
    /// and histograms are unaffected. Long soak runs can turn the log
    /// off to bound memory.
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Registers a metric scope with the given label and returns its id.
    ///
    /// While a scope is active (see [`Self::set_active_scope`]) every
    /// counter, gauge and histogram write lands on `"<label>.<name>"`
    /// instead of `"<name>"`, and emitted events are stamped with the
    /// scope id in [`RecordedEvent::group`]. Reads are by full name, so
    /// a harness queries `"g0.evs.acks"` explicitly. Scope 0 is the
    /// pre-existing root; worlds that never register a scope are
    /// byte-identical to the pre-scope representation.
    pub fn register_scope(&mut self, label: &str) -> u32 {
        let prefix: &'static str = Box::leak(format!("{label}.").into_boxed_str());
        self.scope_prefixes.push(prefix);
        u32::try_from(self.scope_prefixes.len()).expect("too many metric scopes")
    }

    /// Selects the scope subsequent writes land in (0 = root).
    ///
    /// # Panics
    ///
    /// Panics if `scope` was not returned by [`Self::register_scope`].
    pub fn set_active_scope(&mut self, scope: u32) {
        assert!(
            (scope as usize) <= self.scope_prefixes.len(),
            "unregistered metric scope {scope}"
        );
        self.active_scope = scope;
    }

    /// The currently active scope id (0 = root).
    pub fn active_scope(&self) -> u32 {
        self.active_scope
    }

    /// The name prefix of a registered scope (`""` for the root).
    pub fn scope_prefix(&self, scope: u32) -> &'static str {
        if scope == 0 {
            ""
        } else {
            self.scope_prefixes[(scope - 1) as usize]
        }
    }

    fn scoped_slot(&mut self, name: &'static str) -> usize {
        let base = self.names.slot(name);
        if self.active_scope == 0 {
            return base;
        }
        let key = (self.active_scope, base);
        if let Some(&slot) = self.scoped_slots.get(&key) {
            return slot;
        }
        let prefix = self.scope_prefixes[(self.active_scope - 1) as usize];
        let full: &'static str = Box::leak(format!("{prefix}{name}").into_boxed_str());
        let slot = self.names.slot(full);
        self.scoped_slots.insert(key, slot);
        slot
    }

    /// Adds `n` to the named counter, creating it at zero.
    ///
    /// Names follow a dotted `subsystem.metric` convention
    /// (`"net.sent"`, `"storage.forced_writes"`); keeping them
    /// `&'static str` makes call sites cheap and typo-diffable.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        let slot = self.scoped_slot(name);
        *slot_mut(&mut self.counters, slot).get_or_insert(0) += n;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.names
            .lookup(name)
            .and_then(|slot| slot_value(&self.counters, slot))
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names
            .sorted()
            .filter_map(|(name, slot)| slot_value(&self.counters, slot).map(|v| (name, v)))
    }

    /// Sets the named gauge to its current value (last write wins).
    ///
    /// Unlike counters, gauges describe *levels* — retained bodies, queue
    /// depths — that can go down as well as up; the export carries the
    /// final value. Pair a gauge with [`Self::record_value`] when the
    /// peak matters too.
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        let slot = self.scoped_slot(name);
        *slot_mut(&mut self.gauges, slot) = Some(value);
    }

    /// Current value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.names
            .lookup(name)
            .and_then(|slot| slot_value(&self.gauges, slot))
            .unwrap_or(0)
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names
            .sorted()
            .filter_map(|(name, slot)| slot_value(&self.gauges, slot).map(|v| (name, v)))
    }

    /// Records a nanosecond sample into the named histogram.
    pub fn observe_nanos(&mut self, name: &'static str, nanos: u64) {
        let slot = self.scoped_slot(name);
        slot_mut(&mut self.histograms, slot)
            .get_or_insert_with(Histogram::new)
            .record(nanos);
    }

    /// Records a [`SimDuration`] sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, d: SimDuration) {
        self.observe_nanos(name, d.as_nanos());
    }

    /// Records a unit-free sample (a batch size, a queue depth) into the
    /// named histogram. Identical mechanics to [`Self::observe_nanos`];
    /// the separate name keeps call sites honest about units.
    pub fn record_value(&mut self, name: &'static str, value: u64) {
        self.observe_nanos(name, value);
    }

    /// The named histogram, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        let slot = self.names.lookup(name)?;
        self.histograms.get(slot)?.as_ref()
    }

    /// Appends a typed event (no-op when recording is off).
    pub fn emit(&mut self, at: SimTime, actor: ActorId, event: ProtocolEvent) {
        if self.record_events {
            self.events.push(RecordedEvent {
                at_nanos: at.as_nanos(),
                actor: actor.as_raw(),
                group: self.active_scope,
                event,
            });
        }
    }

    /// The full recorded event log, in emission order.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// Iterates the events matching a predicate.
    pub fn events_where<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a RecordedEvent>
    where
        F: FnMut(&ProtocolEvent) -> bool + 'a,
    {
        self.events.iter().filter(move |r| pred(&r.event))
    }

    /// Number of recorded events of the given [`ProtocolEvent::kind`].
    pub fn count_events(&self, kind: &str) -> u64 {
        self.events
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count() as u64
    }

    /// Snapshots the hub into the serializable export form.
    pub fn export(&self) -> MetricsExport {
        MetricsExport {
            counters: self.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: self.gauges().map(|(k, v)| (k.to_string(), v)).collect(),
            histograms: self
                .names
                .sorted()
                .filter_map(|(name, slot)| {
                    let h = self.histograms.get(slot)?.as_ref()?;
                    Some((name.to_string(), h.summary()))
                })
                .collect(),
            event_counts: {
                let mut m: BTreeMap<String, u64> = BTreeMap::new();
                for r in &self.events {
                    *m.entry(r.event.kind().to_string()).or_insert(0) += 1;
                }
                m
            },
            events_recorded: self.events.len() as u64,
        }
    }
}

/// Serializable snapshot of a [`MetricsHub`]; deterministic for a fixed
/// seed (sorted keys, virtual-time samples only).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsExport {
    /// All counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Final values of all gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Percentile summaries of all histograms by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Number of recorded events per [`ProtocolEvent::kind`].
    pub event_counts: BTreeMap<String, u64>,
    /// Total events in the log.
    pub events_recorded: u64,
}

impl MetricsExport {
    /// Compact deterministic JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self).expect("metrics export is always serializable")
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self).expect("metrics export is always serializable")
    }

    /// Parses an export back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut hub = MetricsHub::new();
        assert_eq!(hub.counter("net.sent"), 0);
        hub.incr("net.sent", 2);
        hub.incr("net.sent", 3);
        assert_eq!(hub.counter("net.sent"), 5);
    }

    #[test]
    fn interning_merges_equal_names_from_distinct_statics() {
        // Two equal-content literals may (or may not) be distinct
        // statics; either way they must resolve to the same metric.
        let a: &'static str = "evs.acks_sent";
        let b: &'static str = Box::leak("evs.acks_sent".to_string().into_boxed_str());
        assert_ne!(a.as_ptr(), b.as_ptr());
        let mut hub = MetricsHub::new();
        hub.incr(a, 2);
        hub.incr(b, 3);
        assert_eq!(hub.counter("evs.acks_sent"), 5);
        assert_eq!(hub.counters().count(), 1);
        assert_eq!(hub.export().counters.len(), 1);
    }

    #[test]
    fn iteration_stays_sorted_regardless_of_insertion_order() {
        let mut hub = MetricsHub::new();
        hub.incr("z.last", 1);
        hub.incr("a.first", 1);
        hub.incr("m.middle", 1);
        hub.set_gauge("z.level", 9);
        hub.set_gauge("b.level", 4);
        let counter_names: Vec<_> = hub.counters().map(|(k, _)| k).collect();
        assert_eq!(counter_names, vec!["a.first", "m.middle", "z.last"]);
        let gauge_names: Vec<_> = hub.gauges().map(|(k, _)| k).collect();
        assert_eq!(gauge_names, vec!["b.level", "z.level"]);
    }

    #[test]
    fn gauges_hold_the_last_written_level() {
        let mut hub = MetricsHub::new();
        assert_eq!(hub.gauge("core.retained_bodies"), 0);
        hub.set_gauge("core.retained_bodies", 7);
        hub.set_gauge("core.retained_bodies", 3); // levels go down too
        assert_eq!(hub.gauge("core.retained_bodies"), 3);
        let export = hub.export();
        assert_eq!(export.gauges.get("core.retained_bodies"), Some(&3));
        let back = MetricsExport::from_json(&export.to_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn histogram_percentiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_nanos(), 1_000_000);
        let p50 = h.quantile_nanos(0.50);
        let p99 = h.quantile_nanos(0.99);
        // Bucket upper bounds: within 2x above the true percentile,
        // never below it.
        assert!((500_000..=1_048_575).contains(&p50), "p50={p50}");
        assert!((990_000..=1_048_575).contains(&p99), "p99={p99}");
        assert!(h.quantile_nanos(1.0) <= h.max_nanos());
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [5u64, 100, 9_000, 77] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn events_are_recorded_and_countable() {
        let mut hub = MetricsHub::new();
        hub.emit(
            SimTime::from_millis(1),
            ActorId::from_raw(3),
            ProtocolEvent::GreenLineAdvance { node: 0, green: 7 },
        );
        hub.emit(
            SimTime::from_millis(2),
            ActorId::from_raw(3),
            ProtocolEvent::Retransmit { node: 0, count: 2 },
        );
        assert_eq!(hub.events().len(), 2);
        assert_eq!(hub.count_events("retransmit"), 1);
        assert_eq!(
            hub.events_where(
                |e| matches!(e, ProtocolEvent::GreenLineAdvance { green, .. } if *green == 7)
            )
            .count(),
            1
        );
    }

    #[test]
    fn export_round_trips_through_json() {
        let mut hub = MetricsHub::new();
        hub.incr("net.sent", 42);
        hub.observe_nanos("engine.ordering_latency", 12_345);
        hub.emit(
            SimTime::ZERO,
            ActorId::from_raw(0),
            ProtocolEvent::ClientCommit {
                client: 9,
                latency_nanos: 1234,
            },
        );
        let export = hub.export();
        let text = export.to_json_pretty();
        let back = MetricsExport::from_json(&text).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn scoped_writes_land_on_prefixed_names() {
        let mut hub = MetricsHub::new();
        let g0 = hub.register_scope("g0");
        let g1 = hub.register_scope("g1");
        hub.incr("net.sent", 1); // root
        hub.set_active_scope(g0);
        hub.incr("net.sent", 10);
        hub.set_gauge("core.level", 4);
        hub.observe_nanos("lat", 100);
        hub.set_active_scope(g1);
        hub.incr("net.sent", 20);
        hub.set_active_scope(0);
        hub.incr("net.sent", 2);
        assert_eq!(hub.counter("net.sent"), 3);
        assert_eq!(hub.counter("g0.net.sent"), 10);
        assert_eq!(hub.counter("g1.net.sent"), 20);
        assert_eq!(hub.gauge("g0.core.level"), 4);
        assert_eq!(hub.histogram("g0.lat").unwrap().count(), 1);
        let export = hub.export();
        let names: Vec<_> = export.counters.keys().cloned().collect();
        assert_eq!(names, vec!["g0.net.sent", "g1.net.sent", "net.sent"]);
    }

    #[test]
    fn events_carry_the_active_scope() {
        let mut hub = MetricsHub::new();
        let g1 = hub.register_scope("g1");
        hub.emit(
            SimTime::ZERO,
            ActorId::from_raw(0),
            ProtocolEvent::RedLineAdvance { node: 0, red: 1 },
        );
        hub.set_active_scope(g1);
        hub.emit(
            SimTime::ZERO,
            ActorId::from_raw(1),
            ProtocolEvent::RedLineAdvance { node: 0, red: 2 },
        );
        assert_eq!(hub.events()[0].group, 0);
        assert_eq!(hub.events()[1].group, g1);
    }

    #[test]
    #[should_panic(expected = "unregistered metric scope")]
    fn activating_an_unregistered_scope_panics() {
        let mut hub = MetricsHub::new();
        hub.set_active_scope(3);
    }

    #[test]
    fn unscoped_hub_export_is_unchanged_by_scope_machinery() {
        // A hub that never registers a scope must produce exactly the
        // export it always did — existing baselines depend on it.
        let build = || {
            let mut hub = MetricsHub::new();
            hub.incr("net.sent", 7);
            hub.observe_nanos("lat", 55);
            hub.set_gauge("depth", 2);
            hub.export().to_json()
        };
        let mut scoped = MetricsHub::new();
        let _ = scoped.register_scope("g0"); // registered but never activated
        scoped.incr("net.sent", 7);
        scoped.observe_nanos("lat", 55);
        scoped.set_gauge("depth", 2);
        assert_eq!(build(), build());
        assert_eq!(scoped.export().to_json(), build());
    }

    #[test]
    fn disabled_event_log_still_counts_metrics() {
        let mut hub = MetricsHub::new();
        hub.set_record_events(false);
        hub.emit(
            SimTime::ZERO,
            ActorId::from_raw(0),
            ProtocolEvent::RedLineAdvance { node: 1, red: 3 },
        );
        hub.incr("x", 1);
        assert!(hub.events().is_empty());
        assert_eq!(hub.counter("x"), 1);
    }
}
