//! Event payloads and the internal queue entry type.

use std::any::Any;
use std::cmp::Ordering;
use std::fmt;

use crate::actor::ActorId;
use crate::time::SimTime;

/// A type-erased event payload delivered to an [`Actor`](crate::Actor).
///
/// Layers exchange strongly typed messages; the kernel erases them to move
/// them through the shared queue. Receivers recover the concrete type with
/// [`Payload::downcast`] (consuming) or [`Payload::downcast_ref`]
/// (inspecting):
///
/// ```
/// use todr_sim::Payload;
///
/// struct Ping(u32);
///
/// let p = Payload::new(Ping(7));
/// assert!(p.is::<Ping>());
/// let ping = p.downcast::<Ping>().unwrap();
/// assert_eq!(ping.0, 7);
/// ```
pub struct Payload {
    inner: Box<dyn Any>,
}

impl Payload {
    /// Wraps a concrete message.
    ///
    /// Wrapping an existing `Payload` is the identity: payloads never
    /// nest.
    pub fn new<T: 'static>(value: T) -> Self {
        let boxed: Box<dyn Any> = Box::new(value);
        match boxed.downcast::<Payload>() {
            Ok(p) => *p,
            Err(inner) => Payload { inner },
        }
    }

    /// Whether the payload holds a `T`.
    pub fn is<T: 'static>(&self) -> bool {
        self.inner.is::<T>()
    }

    /// Recovers the concrete message, consuming the payload.
    ///
    /// Returns `None` (dropping the payload) if the payload is not a `T`;
    /// use [`Payload::try_downcast`] to keep it on mismatch.
    pub fn downcast<T: 'static>(self) -> Option<T> {
        self.inner.downcast::<T>().ok().map(|b| *b)
    }

    /// Recovers the concrete message, or returns `self` unchanged when the
    /// payload is of a different type — useful for dispatch chains.
    pub fn try_downcast<T: 'static>(self) -> Result<T, Payload> {
        match self.inner.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(inner) => Err(Payload { inner }),
        }
    }

    /// Borrows the concrete message without consuming.
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        self.inner.downcast_ref::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Payload").finish_non_exhaustive()
    }
}

/// Conversion into a [`Payload`]; implemented for every `'static` type.
///
/// This is the bound used by the scheduling methods on
/// [`Ctx`](crate::Ctx) and [`World`](crate::World), letting call sites
/// pass concrete messages and pre-erased payloads interchangeably.
pub trait IntoPayload {
    /// Erases `self` into a [`Payload`].
    fn into_payload(self) -> Payload;
}

impl<T: 'static> IntoPayload for T {
    fn into_payload(self) -> Payload {
        Payload::new(self)
    }
}

/// A scheduled event in the world's queue.
///
/// Ordering is `(at, tie, seq)`: the `tie` key is assigned by the
/// world's [`TieBreak`](crate::TieBreak) policy when the event is
/// pushed (always `0` under FIFO, a deterministic hash of the target
/// and instant under seeded perturbation), and strictly increasing
/// `seq` values break the remaining ties, which keeps the execution
/// order total and deterministic.
pub(crate) struct QueuedEvent {
    pub at: SimTime,
    pub tie: u64,
    pub seq: u64,
    pub target: ActorId,
    pub payload: Payload,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie && self.seq == other.seq
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        (other.at, other.tie, other.seq).cmp(&(self.at, self.tie, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn payload_downcast_roundtrip() {
        let p = Payload::new(41u32);
        assert!(p.is::<u32>());
        assert!(!p.is::<u64>());
        assert_eq!(p.downcast::<u32>(), Some(41));
    }

    #[test]
    fn payload_downcast_wrong_type_is_none() {
        let p = Payload::new("hello");
        assert_eq!(p.downcast::<u32>(), None);
    }

    #[test]
    fn payload_try_downcast_preserves_on_miss() {
        let p = Payload::new(3.5f64);
        let p = match p.try_downcast::<u32>() {
            Ok(_) => panic!("should not downcast"),
            Err(p) => p,
        };
        assert_eq!(p.downcast::<f64>(), Some(3.5));
    }

    #[test]
    fn payload_downcast_ref() {
        let p = Payload::new(vec![1, 2, 3]);
        assert_eq!(p.downcast_ref::<Vec<i32>>().unwrap().len(), 3);
        assert!(p.downcast_ref::<String>().is_none());
    }

    #[test]
    fn queue_orders_by_time_then_seq() {
        let mut heap = BinaryHeap::new();
        let ev = |at_ms, seq| QueuedEvent {
            at: SimTime::from_millis(at_ms),
            tie: 0,
            seq,
            target: ActorId::from_raw(0),
            payload: Payload::new(()),
        };
        heap.push(ev(5, 2));
        heap.push(ev(1, 3));
        heap.push(ev(5, 1));
        heap.push(ev(0, 4));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.at.as_millis(), e.seq))
            .collect();
        assert_eq!(order, vec![(0, 4), (1, 3), (5, 1), (5, 2)]);
    }
}
