//! Deterministic random number generation.
//!
//! The kernel ships its own small generator (xoshiro256** seeded through
//! SplitMix64) rather than relying on external generator crates, so that
//! simulation results are bit-for-bit stable regardless of dependency
//! version bumps.

/// One round of the SplitMix64 mixer: a cheap, statistically strong
/// 64-bit hash. Used for seed expansion and for the
/// [`TieBreak`](crate::TieBreak) schedule-perturbation keys, where the
/// same input must always map to the same output within a run.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable pseudo-random number generator
/// (xoshiro256**).
///
/// Cloning a `SimRng` clones its state: two clones produce identical
/// streams. The [`World`](crate::World) owns one `SimRng`; actors access it
/// through [`Ctx::rng`](crate::Ctx::rng) so that every random decision in a
/// run is derived from the single world seed.
///
/// ```
/// use todr_sim::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded with SplitMix64 so that nearby seeds (0, 1,
    /// 2, ...) still produce uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        // Sequential SplitMix64 stream: state[i] = mix(seed + (i+1)·φ64),
        // exactly as if the mixer were advanced four times.
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        SimRng {
            state: [
                splitmix64(seed),
                splitmix64(seed.wrapping_add(GOLDEN)),
                splitmix64(seed.wrapping_add(GOLDEN.wrapping_mul(2))),
                splitmix64(seed.wrapping_add(GOLDEN.wrapping_mul(3))),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed integer in `[0, bound)`.
    ///
    /// This is **exactly** uniform, not merely approximately so: the
    /// naive `next_u64() % bound` carries a modulo bias of up to
    /// `2^64 mod bound` extra mass on the low values (detectable for
    /// bounds above ~2^63, and a real hazard for the `todr-check`
    /// Explorer, whose schedule sweeps and tie-break perturbations lean
    /// on this method). We instead use Lemire's multiply-shift method
    /// with rejection of the biased low fraction, so every value in
    /// `[0, bound)` has probability exactly `1/bound`. The rejection
    /// loop consumes a variable number of `next_u64` draws but
    /// terminates with overwhelming probability (the per-iteration
    /// rejection chance is `< bound / 2^64`); determinism is unaffected
    /// because the draw count is a pure function of the stream. See the
    /// `gen_range_unbiased_at_huge_bounds` and
    /// `gen_range_chi_square_uniformity` tests for the distribution
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniformly distributed integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An exponentially distributed duration with the given mean, in
    /// nanoseconds; useful for Poisson arrival processes.
    pub fn exp_nanos(&mut self, mean_nanos: f64) -> u64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        (-u.ln() * mean_nanos).round().max(0.0) as u64
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len() as u64) as usize])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give subsystems
    /// their own streams so adding randomness in one place does not perturb
    /// another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.gen_range(17);
            assert!(x < 17);
        }
        for _ in 0..1000 {
            let x = rng.gen_range_inclusive(10, 12);
            assert!((10..=12).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_chi_square_uniformity() {
        // Distribution sanity for the Explorer's schedule sweeps: a
        // chi-square goodness-of-fit test against the uniform
        // distribution over a bound that is neither a power of two nor
        // a divisor-friendly value. With k-1 = 96 degrees of freedom
        // the 99.9% critical value is ~147; a modulo-biased generator
        // over a comparable bound fails this by orders of magnitude.
        let mut rng = SimRng::new(0xC41_5EED);
        const BUCKETS: u64 = 97;
        const SAMPLES: u64 = 200_000;
        let mut counts = [0u64; BUCKETS as usize];
        for _ in 0..SAMPLES {
            counts[rng.gen_range(BUCKETS) as usize] += 1;
        }
        let expected = SAMPLES as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 147.0,
            "chi-square statistic {chi2:.1} exceeds the 99.9% critical value for 96 dof"
        );
    }

    #[test]
    fn gen_range_unbiased_at_huge_bounds() {
        // The naive `next_u64() % bound` is measurably biased once the
        // bound exceeds 2^63: for bound = 3·2^62, values below 2^62
        // would be drawn twice as often (expected low-quarter fraction
        // 1/2 instead of 1/3). Lemire rejection keeps it exact.
        let mut rng = SimRng::new(0xB1A5);
        let bound = 3u64 << 62;
        let quarter = 1u64 << 62;
        let n = 40_000;
        let low = (0..n).filter(|_| rng.gen_range(bound) < quarter).count();
        let fraction = low as f64 / n as f64;
        // Unbiased mean 1/3; 4-sigma band is ~±0.0094 at n = 40k. A
        // modulo-biased draw would sit at 0.5, far outside.
        assert!(
            (fraction - 1.0 / 3.0).abs() < 0.012,
            "low-quarter fraction {fraction:.4} deviates from 1/3 — biased range reduction?"
        );
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn exp_nanos_mean_is_plausible() {
        let mut rng = SimRng::new(17);
        let n = 20_000;
        let mean = 1_000_000.0;
        let total: f64 = (0..n).map(|_| rng.exp_nanos(mean) as f64).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(23);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::new(29);
        let mut child = a.fork();
        // The child stream should differ from the parent continuation.
        let pa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let pc: Vec<u64> = (0..4).map(|_| child.next_u64()).collect();
        assert_ne!(pa, pc);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SimRng::new(31);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        // Overwhelmingly likely at least one byte is non-zero.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
