//! Virtual time: instants and durations measured in nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is a monotonically non-decreasing quantity: the [`World`]
/// advances it as events are processed and it never goes backwards.
///
/// [`World`]: crate::World
///
/// ```
/// use todr_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a floating point quantity.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of wrapping.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use todr_sim::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or large enough to overflow.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs < u64::MAX as f64 / 1e9,
            "invalid duration: {secs} seconds"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds as a floating-point quantity.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in milliseconds as a floating-point quantity.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction, clamping at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_millis(), 15);
        assert_eq!((t - d).as_millis(), 5);
        assert_eq!(t - SimTime::from_millis(4), SimDuration::from_millis(6));
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(SimDuration::from_millis(15) / 3, d);
    }

    #[test]
    fn saturating_operations() {
        assert_eq!(
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_millis(2).checked_sub(SimDuration::from_millis(3)),
            None
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000005).as_nanos(), 500);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
