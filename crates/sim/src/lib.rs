//! # todr-sim — deterministic discrete-event simulation kernel
//!
//! Every other layer of the `todr` system — the partitionable network, the
//! Extended Virtual Synchrony group-communication stack, the simulated
//! stable storage and the replication engines themselves — runs inside this
//! kernel. The kernel provides:
//!
//! * a **virtual clock** ([`SimTime`], [`SimDuration`]) with nanosecond
//!   resolution — experiments measure latency and throughput in virtual
//!   time, so results are exactly reproducible and independent of host
//!   machine speed;
//! * an **event queue** with a total, deterministic order (time, then
//!   insertion sequence), plus a pluggable same-instant [`TieBreak`]
//!   policy that schedule-exploration harnesses use to sweep
//!   alternative (still deterministic, replayable) interleavings;
//! * an **actor registry** ([`World`]): each simulated process (a network
//!   fabric, a group-communication daemon, a replication server, a client)
//!   is an [`Actor`] that receives typed payloads through [`Ctx`];
//! * a **seeded RNG** ([`SimRng`]) so that stochastic workloads and network
//!   jitter are reproducible from a single `u64` seed;
//! * a lightweight **trace** facility for debugging protocol runs;
//! * a typed **observability bus** ([`MetricsHub`]): named counters,
//!   fixed-bucket latency histograms and structured [`ProtocolEvent`]s
//!   that every protocol layer reports into, exportable as
//!   deterministic JSON ([`MetricsExport`]).
//!
//! # Example
//!
//! ```
//! use todr_sim::{Actor, Ctx, Payload, SimDuration, World};
//!
//! /// An actor that counts the ticks it receives and re-arms a timer.
//! struct Ticker {
//!     remaining: u32,
//! }
//!
//! struct Tick;
//!
//! impl Actor for Ticker {
//!     fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
//!         if payload.downcast::<Tick>().is_some() && self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.send_self_after(SimDuration::from_millis(10), Tick);
//!         }
//!     }
//! }
//!
//! let mut world = World::new(42);
//! let ticker = world.add_actor("ticker", Ticker { remaining: 3 });
//! world.schedule_now(ticker, Tick);
//! world.run_to_quiescence();
//! // 1 initial tick + 3 re-armed ticks, 10ms apart.
//! assert_eq!(world.now(), todr_sim::SimTime::from_millis(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod checksum;
mod event;
pub mod metrics;
mod resource;
mod rng;
mod time;
mod trace;
mod world;

pub use actor::{Actor, ActorId};
pub use checksum::checksum64;
pub use event::{IntoPayload, Payload};
pub use metrics::{
    EventColor, Histogram, HistogramSummary, MetricsExport, MetricsHub, ProtocolEvent, ReadTier,
    RecordedEvent,
};
pub use resource::CpuMeter;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry, TraceLevel};
pub use world::{Ctx, TieBreak, World};
