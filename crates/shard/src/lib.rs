//! # todr-shard — sharded replication groups, one database
//!
//! The replication engine of the reproduced paper funnels every action
//! through **one** EVS group's total order — correct, but a hard
//! throughput ceiling: adding replicas adds fan-out, never capacity.
//! This crate lifts that ceiling the way genuine partial replication
//! systems do (Sutra & Shapiro; see PAPERS.md): partition the key space
//! into `S` shards, give each shard its own *unchanged*
//! `ReplicationEngine` + EVS group, and add a thin deterministic
//! [`ShardRouter`] in front:
//!
//! * **Single-shard actions** (the overwhelming majority in a
//!   well-partitioned workload) are forwarded to the owning group
//!   verbatim — same message, same reply path, zero added protocol
//!   cost. Within its group the action enjoys the paper's full
//!   guarantees (Theorem 1 holds per group).
//! * **Cross-shard actions** run a genuine-partial-replication commit:
//!   the router submits an ordering marker (*prepare*) to every
//!   participating group, collects the markers' green positions,
//!   deterministically merges them into a transaction timestamp
//!   (`ts = max`), and then releases the per-group *commit* actions
//!   through per-shard FIFO queues so that any two transactions sharing
//!   a shard commit in the same relative order **in every group they
//!   share**. Only the groups that host a touched shard ever see the
//!   transaction — replicas never process traffic for shards they do
//!   not host.
//!
//! Commits are wrapped in [`todr_db::Op::Checked`] with a per-transaction
//! guard row, so a commit resubmitted after a timeout (contact crashed,
//! minority partition) applies **at most once** per group no matter how
//! many copies eventually reach the green order.
//!
//! The router is an ordinary [`todr_sim::Actor`]: fully deterministic,
//! schedulable, crash-free by construction (it is not a replica — a real
//! deployment replicates it per client session; here determinism is the
//! point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;

pub use router::{
    classify, Route, RouterStats, RouterTick, ShardRouter, ShardRouterConfig, ShardTopology,
    ROUTER_CLIENT,
};

#[cfg(feature = "chaos-mutations")]
pub use router::ShardChaos;
