//! The deterministic shard router: single-shard fast path plus the
//! cross-shard prepare / merge / ordered-commit protocol.

use std::collections::BTreeMap;

use todr_core::{
    ActionId, ClientId, ClientReply, ClientRequest, QuerySemantics, RequestId, UpdateReplyPolicy,
};
use todr_db::keys::{action_footprint, write_set};
use todr_db::{Op, Value};
use todr_net::NodeId;
use todr_sim::{Actor, ActorId, Ctx, Payload, ProtocolEvent, SimDuration, SimTime};

/// The client id the router stamps on its own protocol submissions
/// (prepare markers and commit actions).
pub const ROUTER_CLIENT: ClientId = ClientId(u32::MAX);

/// Deliberately broken router behaviours for the todr-check mutation
/// self-test: each one removes a load-bearing piece of the cross-shard
/// protocol so the serializability oracle can prove it would notice.
#[cfg(feature = "chaos-mutations")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardChaos {
    /// Release cross-shard commits the instant their timestamps merge,
    /// skipping the per-shard FIFO commit barrier. Two transactions
    /// sharing shards can then reach the participating groups' green
    /// orders in different relative orders — exactly the cross-group
    /// serializability violation the barrier exists to prevent.
    SkipCommitBarrier,
}

/// Where the key space lives: `shards` groups, each with the engine
/// actors of its replicas (in replica order).
#[derive(Debug, Clone)]
pub struct ShardTopology {
    /// Per-group engine actor ids; `contacts.len()` is the shard count.
    pub contacts: Vec<Vec<ActorId>>,
}

impl ShardTopology {
    /// Number of shards (= replication groups).
    pub fn shards(&self) -> u32 {
        self.contacts.len() as u32
    }
}

/// How the router classified a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Every touched row lives on one shard.
    Single(u32),
    /// Rows span several shards (ascending shard ids).
    Cross(Vec<u32>),
}

/// Classifies a request against `shards` shards from its statically
/// extracted read/write footprint. Requests touching no rows at all
/// (pure [`Op::Noop`]) route to shard 0.
pub fn classify(update: &Op, query: Option<&todr_db::Query>, shards: u32) -> Route {
    let fp = action_footprint(update, query);
    if fp.is_empty() {
        return Route::Single(0);
    }
    let touched: Vec<u32> = fp.shards(shards).into_iter().collect();
    if touched.len() == 1 {
        Route::Single(touched[0])
    } else {
        Route::Cross(touched)
    }
}

/// Splits a cross-shard update into per-group op lists. Fails (with the
/// rejection reason) when the op cannot be attributed row-by-row — a
/// stored procedure reads and writes arbitrary rows at ordering time,
/// and a `Checked` guard must be co-located with everything it
/// conditions.
fn split_update(op: &Op, shards: u32) -> Result<BTreeMap<u32, Vec<Op>>, &'static str> {
    let mut per_group: BTreeMap<u32, Vec<Op>> = BTreeMap::new();
    split_into(op, shards, &mut per_group)?;
    Ok(per_group)
}

fn split_into(op: &Op, shards: u32, out: &mut BTreeMap<u32, Vec<Op>>) -> Result<(), &'static str> {
    match op {
        Op::Noop => Ok(()),
        Op::Batch(ops) => {
            for inner in ops {
                split_into(inner, shards, out)?;
            }
            Ok(())
        }
        Op::Proc { .. } => Err("cross-shard stored procedures are not splittable"),
        other => {
            let mut touched = write_set(other).shards(shards).into_iter();
            let (Some(shard), None) = (touched.next(), touched.next()) else {
                return Err("checked op spans shards; co-locate its guard and writes");
            };
            out.entry(shard).or_default().push(other.clone());
            Ok(())
        }
    }
}

/// Router tuning.
#[derive(Debug, Clone)]
pub struct ShardRouterConfig {
    /// The shard → group map.
    pub topology: ShardTopology,
    /// Resubmit an unanswered prepare/commit after this long (crashed or
    /// partitioned contact replica).
    pub retry_timeout: SimDuration,
    /// Retry-scan period; ticks are only scheduled while transactions
    /// are in flight, so an idle router quiesces.
    pub tick: SimDuration,
    /// Backoff before resubmitting a rejected protocol submission.
    pub reject_backoff: SimDuration,
    /// Deliberate protocol breakage for mutation self-tests.
    #[cfg(feature = "chaos-mutations")]
    pub chaos: Option<ShardChaos>,
}

impl ShardRouterConfig {
    /// Default timing for a topology.
    pub fn new(topology: ShardTopology) -> Self {
        ShardRouterConfig {
            topology,
            retry_timeout: SimDuration::from_millis(2_000),
            tick: SimDuration::from_millis(500),
            reject_backoff: SimDuration::from_millis(100),
            #[cfg(feature = "chaos-mutations")]
            chaos: None,
        }
    }
}

/// Aggregate router progress, for harness assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests forwarded on the single-shard fast path.
    pub singles_forwarded: u64,
    /// Cross-shard transactions started.
    pub txns_started: u64,
    /// Cross-shard transactions fully committed and answered.
    pub txns_applied: u64,
    /// Requests rejected at classification time.
    pub rejected: u64,
    /// Prepare/commit resubmissions after timeout or rejection.
    pub retries: u64,
}

/// Periodic self-message driving retransmission scans.
pub struct RouterTick;

/// One in-flight protocol submission to a group.
#[derive(Debug, Clone, Copy)]
struct SubState {
    attempt: u32,
    /// Router request id of the outstanding copy (`None` while backing
    /// off after a rejection).
    rid: Option<u64>,
    /// When to resubmit.
    deadline: SimTime,
}

#[derive(Debug)]
struct Txn {
    request: RequestId,
    reply_to: ActorId,
    submitted_at: SimTime,
    participants: Vec<u32>,
    writes: BTreeMap<u32, Vec<Op>>,
    /// Green position of the prepare marker, per group.
    prepared: BTreeMap<u32, u64>,
    /// Merged timestamp, once every prepare is green.
    ts: Option<u64>,
    /// Whether the commits have been handed to the groups.
    released: bool,
    /// Green position of the commit, per group.
    committed: BTreeMap<u32, u64>,
    /// Outstanding submissions for the current phase, per group.
    sub: BTreeMap<u32, SubState>,
}

impl Txn {
    fn order_key(&self, id: u64) -> (u64, u64) {
        (self.ts.unwrap_or(u64::MAX), id)
    }
}

/// The shard router actor. See the crate docs for the protocol.
pub struct ShardRouter {
    config: ShardRouterConfig,
    next_txn: u64,
    next_rid: u64,
    txns: BTreeMap<u64, Txn>,
    /// Router request id → (txn, group) of the submission awaiting a
    /// reply.
    outstanding: BTreeMap<u64, (u64, u32)>,
    /// Per-shard FIFO commit queues: merged transactions, in release
    /// order at the front and merged-timestamp order behind it.
    queues: BTreeMap<u32, Vec<u64>>,
    tick_scheduled: bool,
    stats: RouterStats,
}

impl ShardRouter {
    /// Creates a router for the given topology.
    pub fn new(config: ShardRouterConfig) -> Self {
        assert!(
            !config.topology.contacts.is_empty(),
            "topology needs at least one shard"
        );
        assert!(
            config.topology.contacts.iter().all(|c| !c.is_empty()),
            "every shard needs at least one contact engine"
        );
        ShardRouter {
            config,
            next_txn: 0,
            next_rid: 0,
            txns: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            queues: BTreeMap::new(),
            tick_scheduled: false,
            stats: RouterStats::default(),
        }
    }

    /// Progress counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Cross-shard transactions still in flight.
    pub fn pending(&self) -> usize {
        self.txns.len()
    }

    fn contact(&self, txn: u64, group: u32, attempt: u32) -> ActorId {
        let replicas = &self.config.topology.contacts[group as usize];
        let mix = txn
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(group))
            .wrapping_add(u64::from(attempt));
        replicas[(mix % replicas.len() as u64) as usize]
    }

    fn ensure_tick(&mut self, ctx: &mut Ctx<'_>) {
        if !self.tick_scheduled && !self.txns.is_empty() {
            self.tick_scheduled = true;
            ctx.send_self_after(self.config.tick, RouterTick);
        }
    }

    fn guard_key(txn: u64) -> String {
        format!("t{txn}")
    }

    /// Builds the phase payload for `(txn, group)`: a prepare is a bare
    /// ordering marker; a commit carries the group's writes behind a
    /// once-only guard so resubmitted copies deterministically abort.
    fn phase_update(txn_id: u64, txn: &Txn, group: u32) -> Op {
        if txn.ts.is_none() {
            return Op::Noop; // prepare marker
        }
        let key = Self::guard_key(txn_id);
        let mut then = txn.writes.get(&group).cloned().unwrap_or_default();
        then.push(Op::Put {
            table: "_txn".to_string(),
            key: key.clone(),
            value: Value::Int(1),
        });
        Op::Checked {
            expect: vec![("_txn".to_string(), key, None)],
            then,
        }
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>, txn_id: u64, group: u32) {
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        self.next_rid += 1;
        let rid = self.next_rid;
        let state = txn.sub.entry(group).or_insert(SubState {
            attempt: 0,
            rid: None,
            deadline: SimTime::ZERO,
        });
        if let Some(old) = state.rid.take() {
            self.outstanding.remove(&old);
        }
        state.attempt += 1;
        state.rid = Some(rid);
        state.deadline = ctx.now() + self.config.retry_timeout;
        let attempt = state.attempt;
        let update = Self::phase_update(txn_id, txn, group);
        let committing = txn.ts.is_some();
        self.outstanding.insert(rid, (txn_id, group));
        let target = self.contact(txn_id, group, attempt);
        let req = ClientRequest {
            request: RequestId(rid),
            client: ROUTER_CLIENT,
            reply_to: ctx.self_id(),
            query: None,
            update,
            query_semantics: QuerySemantics::Strict,
            read_consistency: None,
            reply_policy: UpdateReplyPolicy::OnGreen,
            size_bytes: if committing { 200 } else { 64 },
        };
        ctx.send_now(target, req);
        if attempt > 1 {
            self.stats.retries += 1;
            ctx.metrics().incr("shard.retries", 1);
        }
        ctx.metrics().incr(
            if committing {
                "shard.commits_sent"
            } else {
                "shard.prepares_sent"
            },
            1,
        );
    }

    fn start_cross(&mut self, ctx: &mut Ctx<'_>, req: ClientRequest, groups: Vec<u32>) {
        let writes = match split_update(&req.update, self.config.topology.shards()) {
            Ok(w) => w,
            Err(reason) => {
                self.stats.rejected += 1;
                ctx.metrics().incr("shard.rejected", 1);
                ctx.send_now(
                    req.reply_to,
                    ClientReply::Rejected {
                        request: req.request,
                        reason,
                    },
                );
                return;
            }
        };
        if req.query.is_some() {
            self.stats.rejected += 1;
            ctx.metrics().incr("shard.rejected", 1);
            ctx.send_now(
                req.reply_to,
                ClientReply::Rejected {
                    request: req.request,
                    reason: "cross-shard queries are not supported",
                },
            );
            return;
        }
        self.next_txn += 1;
        let txn_id = self.next_txn;
        self.stats.txns_started += 1;
        ctx.metrics().incr("shard.cross_routed", 1);
        let participants_mask: u64 = groups.iter().fold(0, |m, &g| m | (1u64 << (g % 64)));
        ctx.emit(ProtocolEvent::CrossShardStart {
            txn: txn_id,
            participants: participants_mask,
        });
        self.txns.insert(
            txn_id,
            Txn {
                request: req.request,
                reply_to: req.reply_to,
                submitted_at: ctx.now(),
                participants: groups.clone(),
                writes,
                prepared: BTreeMap::new(),
                ts: None,
                released: false,
                committed: BTreeMap::new(),
                sub: BTreeMap::new(),
            },
        );
        for g in groups {
            self.submit(ctx, txn_id, g);
        }
        self.ensure_tick(ctx);
    }

    fn enqueue_merged(&mut self, txn_id: u64) {
        let txn = &self.txns[&txn_id];
        let key = txn.order_key(txn_id);
        let participants = txn.participants.clone();
        for g in participants {
            let queue = self.queues.entry(g).or_default();
            let pos = queue
                .iter()
                .position(|&other| {
                    let o = &self.txns[&other];
                    !o.released && o.order_key(other) > key
                })
                .unwrap_or(queue.len());
            queue.insert(pos, txn_id);
        }
    }

    fn try_release(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut releasable: Option<u64> = None;
            for queue in self.queues.values() {
                let Some(&head) = queue.first() else { continue };
                let txn = &self.txns[&head];
                if txn.released || txn.ts.is_none() {
                    continue;
                }
                if txn
                    .participants
                    .iter()
                    .all(|g| self.queues.get(g).and_then(|q| q.first()) == Some(&head))
                {
                    releasable = Some(head);
                    break;
                }
            }
            let Some(txn_id) = releasable else { break };
            self.release(ctx, txn_id);
        }
    }

    fn release(&mut self, ctx: &mut Ctx<'_>, txn_id: u64) {
        let txn = self.txns.get_mut(&txn_id).expect("releasing a live txn");
        txn.released = true;
        // Drop any straggler prepare submissions so a late prepare reply
        // cannot be mistaken for a commit reply.
        let stale: Vec<u64> = txn.sub.values().filter_map(|s| s.rid).collect();
        txn.sub.clear();
        for rid in stale {
            self.outstanding.remove(&rid);
        }
        let txn = self.txns.get(&txn_id).expect("releasing a live txn");
        let participants = txn.participants.clone();
        for g in participants {
            self.submit(ctx, txn_id, g);
        }
    }

    fn handle_committed(&mut self, ctx: &mut Ctx<'_>, rid: u64, green_seq: u64) {
        let Some((txn_id, group)) = self.outstanding.remove(&rid) else {
            return; // late reply for a resubmitted or finished phase
        };
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        let attempt = txn.sub.get(&group).map_or(1, |s| s.attempt);
        txn.sub.remove(&group);
        if txn.ts.is_none() {
            // Prepare phase.
            if txn.prepared.contains_key(&group) {
                return;
            }
            txn.prepared.insert(group, green_seq);
            ctx.emit(ProtocolEvent::CrossShardPrepared {
                txn: txn_id,
                group,
                green_seq,
            });
            if txn.prepared.len() == txn.participants.len() {
                // Deterministic merge of the participating groups' green
                // positions: the transaction's cross-group timestamp.
                let ts = txn.prepared.values().copied().max().unwrap_or(0);
                txn.ts = Some(ts);
                ctx.emit(ProtocolEvent::CrossShardMerged { txn: txn_id, ts });
                #[cfg(feature = "chaos-mutations")]
                if self.config.chaos == Some(ShardChaos::SkipCommitBarrier) {
                    self.release(ctx, txn_id);
                    return;
                }
                self.enqueue_merged(txn_id);
                self.try_release(ctx);
            }
        } else {
            // Commit phase.
            if txn.committed.contains_key(&group) {
                return;
            }
            txn.committed.insert(group, green_seq);
            ctx.emit(ProtocolEvent::CrossShardCommitted {
                txn: txn_id,
                group,
                green_seq,
                attempt,
            });
            if let Some(queue) = self.queues.get_mut(&group) {
                if queue.first() == Some(&txn_id) {
                    queue.remove(0);
                }
            }
            if txn.committed.len() == txn.participants.len() {
                let latency = ctx.now().saturating_since(txn.submitted_at);
                ctx.metrics().observe("shard.txn_latency", latency);
                ctx.metrics().incr("shard.txns_applied", 1);
                self.stats.txns_applied += 1;
                ctx.emit(ProtocolEvent::CrossShardApplied { txn: txn_id });
                let txn = self.txns.remove(&txn_id).expect("finishing a live txn");
                for state in txn.sub.values() {
                    if let Some(old) = state.rid {
                        self.outstanding.remove(&old);
                    }
                }
                ctx.send_now(
                    txn.reply_to,
                    ClientReply::Committed {
                        request: txn.request,
                        action: ActionId {
                            server: NodeId::new(u32::MAX),
                            index: txn_id,
                        },
                        result: None,
                        submitted_at: txn.submitted_at,
                        green_seq: txn.ts.unwrap_or(0),
                    },
                );
            }
            self.try_release(ctx);
        }
    }

    fn handle_rejected(&mut self, ctx: &mut Ctx<'_>, rid: u64) {
        let Some((txn_id, group)) = self.outstanding.remove(&rid) else {
            return;
        };
        if let Some(txn) = self.txns.get_mut(&txn_id) {
            if let Some(state) = txn.sub.get_mut(&group) {
                state.rid = None;
                state.deadline = ctx.now() + self.config.reject_backoff;
            }
        }
        self.ensure_tick(ctx);
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        self.tick_scheduled = false;
        let now = ctx.now();
        let due: Vec<(u64, u32)> = self
            .txns
            .iter()
            .flat_map(|(&id, txn)| {
                txn.sub
                    .iter()
                    .filter(move |(_, s)| s.deadline <= now)
                    .map(move |(&g, _)| (id, g))
            })
            .collect();
        for (txn_id, group) in due {
            self.submit(ctx, txn_id, group);
        }
        self.ensure_tick(ctx);
    }
}

impl Actor for ShardRouter {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.try_downcast::<RouterTick>() {
            Ok(_) => {
                self.tick(ctx);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.try_downcast::<ClientRequest>() {
            Ok(req) => {
                match classify(
                    &req.update,
                    req.query.as_ref(),
                    self.config.topology.shards(),
                ) {
                    Route::Single(shard) => {
                        self.stats.singles_forwarded += 1;
                        ctx.metrics().incr("shard.single_routed", 1);
                        let replicas = &self.config.topology.contacts[shard as usize];
                        let target = replicas[req.client.0 as usize % replicas.len()];
                        ctx.send_now(target, req);
                    }
                    Route::Cross(groups) => self.start_cross(ctx, req, groups),
                }
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<ClientReply>() {
            Some(ClientReply::Committed {
                request, green_seq, ..
            }) => self.handle_committed(ctx, request.0, green_seq),
            Some(ClientReply::Rejected { request, .. }) => self.handle_rejected(ctx, request.0),
            Some(ClientReply::QueryAnswer { .. }) => {}
            None => panic!("router received an unknown payload type"),
        }
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("pending", &self.txns.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
