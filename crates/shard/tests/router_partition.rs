//! Property test: the router's classification is a total partition of
//! the action space.
//!
//! Over thousands of fuzzed ops and queries (every `Op` variant,
//! nested batches, checked guards, stored procedures, all query
//! kinds) and a range of shard counts, [`classify`] must
//!
//! * always produce a verdict (totality — no op is unroutable at
//!   classification time);
//! * name only in-range shards, with `Cross` lists strictly ascending
//!   and of length ≥ 2 (disjointness of the single/cross split);
//! * agree exactly with the op's statically extracted footprint — the
//!   same pure function every replica and offline checker uses;
//! * put every *row* on exactly one shard, and with one shard route
//!   everything to it.

use todr_db::keys::{action_footprint, shard_of};
use todr_db::{Op, Query, Value};
use todr_shard::{classify, Route};
use todr_sim::SimRng;

fn fuzz_table(rng: &mut SimRng) -> String {
    format!("t{}", rng.gen_range(5))
}

fn fuzz_key(rng: &mut SimRng) -> String {
    format!("k{}", rng.gen_range(64))
}

fn fuzz_op(rng: &mut SimRng, depth: u32) -> Op {
    let die = if depth == 0 {
        rng.gen_range(6) // leaf variants only
    } else {
        rng.gen_range(8)
    };
    match die {
        0 => Op::Noop,
        1 => Op::put(
            fuzz_table(rng),
            fuzz_key(rng),
            Value::Int(rng.gen_range(100) as i64),
        ),
        2 => Op::delete(fuzz_table(rng), fuzz_key(rng)),
        3 => Op::incr(fuzz_table(rng), fuzz_key(rng), rng.gen_range(9) as i64 - 4),
        4 => Op::ts_put(
            fuzz_table(rng),
            fuzz_key(rng),
            Value::Int(7),
            rng.gen_range(1000),
        ),
        5 => Op::Proc {
            name: "audit".into(),
            args: Vec::new(),
        },
        6 => Op::Checked {
            expect: (0..rng.gen_range(3))
                .map(|_| (fuzz_table(rng), fuzz_key(rng), None))
                .collect(),
            then: (0..1 + rng.gen_range(3))
                .map(|_| fuzz_op(rng, depth - 1))
                .collect(),
        },
        _ => Op::Batch(
            (0..rng.gen_range(5))
                .map(|_| fuzz_op(rng, depth - 1))
                .collect(),
        ),
    }
}

fn fuzz_query(rng: &mut SimRng) -> Option<Query> {
    match rng.gen_range(6) {
        0 => Some(Query::get(fuzz_table(rng), fuzz_key(rng))),
        1 => Some(Query::scan(fuzz_table(rng), "")),
        2 => Some(Query::Count {
            table: fuzz_table(rng),
        }),
        3 => Some(Query::Digest),
        _ => None,
    }
}

#[test]
fn classify_is_a_total_partition_over_fuzzed_ops() {
    let mut rng = SimRng::new(2002);
    for round in 0..4000 {
        let op = fuzz_op(&mut rng, 3);
        let query = fuzz_query(&mut rng);
        for shards in [1u32, 2, 3, 4, 7, 13] {
            let route = classify(&op, query.as_ref(), shards);
            // Totality + range + the exact footprint agreement.
            let fp = action_footprint(&op, query.as_ref());
            let expected: Vec<u32> = fp.shards(shards).into_iter().collect();
            match &route {
                Route::Single(s) => {
                    assert!(*s < shards, "round {round}: shard {s} out of range");
                    if expected.is_empty() {
                        // Footprint-free actions (pure noops) route to
                        // shard 0 by convention.
                        assert_eq!(*s, 0, "round {round}: empty footprint not on shard 0");
                    } else {
                        assert_eq!(
                            expected,
                            vec![*s],
                            "round {round}: single-shard verdict disagrees with footprint"
                        );
                    }
                }
                Route::Cross(list) => {
                    assert!(
                        list.len() >= 2,
                        "round {round}: cross verdict with {} shard(s)",
                        list.len()
                    );
                    assert!(
                        list.windows(2).all(|w| w[0] < w[1]),
                        "round {round}: cross list not strictly ascending: {list:?}"
                    );
                    assert!(
                        list.iter().all(|s| *s < shards),
                        "round {round}: cross list out of range: {list:?}"
                    );
                    assert_eq!(
                        expected, *list,
                        "round {round}: cross verdict disagrees with footprint"
                    );
                }
            }
            // With one shard the partition is trivial: everything is
            // single-shard, on shard 0.
            if shards == 1 {
                assert_eq!(
                    route,
                    Route::Single(0),
                    "round {round}: one-shard cluster produced a non-trivial route"
                );
            }
        }
    }
}

#[test]
fn every_row_lands_on_exactly_one_shard() {
    // The row-level partition underneath `classify`: for each shard
    // count, each row's put routes `Single(shard_of(row))` — the cells
    // {rows on shard s} are disjoint by construction and cover every
    // row (totality), i.e. `shard_of` induces a partition and the
    // router respects it.
    for shards in [1u32, 2, 3, 5, 8] {
        let mut cell_sizes = vec![0u32; shards as usize];
        for i in 0..300 {
            let key = format!("row-{i}");
            let op = Op::put("acct", &key, Value::Int(1));
            match classify(&op, None, shards) {
                Route::Single(s) => {
                    assert_eq!(s, shard_of("acct", &key, shards));
                    cell_sizes[s as usize] += 1;
                }
                Route::Cross(list) => {
                    panic!("single-row put classified cross-shard: {list:?}")
                }
            }
        }
        assert_eq!(
            cell_sizes.iter().sum::<u32>(),
            300,
            "partition must cover all rows"
        );
    }
}

#[test]
fn statically_unbounded_actions_touch_every_shard() {
    // Stored procedures and table-wide queries cannot be attributed to
    // rows; the partition's totality comes from classifying them as
    // touching *all* shards.
    let proc = Op::Proc {
        name: "sweep".into(),
        args: Vec::new(),
    };
    assert_eq!(classify(&proc, None, 4), Route::Cross(vec![0, 1, 2, 3]));
    assert_eq!(classify(&proc, None, 1), Route::Single(0));
    assert_eq!(
        classify(&Op::Noop, Some(&Query::Digest), 3),
        Route::Cross(vec![0, 1, 2])
    );
}
